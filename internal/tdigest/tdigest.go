// Package tdigest implements the t-digest of Dunning and Ertl ("Computing
// extremely accurate quantiles using t-digests", 2019), the merging variant
// with the k₁ scale function.
//
// The t-digest is the widely deployed heuristic for accurate tail quantiles
// that the REQ paper contrasts with in Section 1.1: it is "intended to
// achieve relative error, but provides no formal accuracy analysis". The
// experiment harness uses it to show where a heuristic with no guarantee
// sits between the additive sketches and REQ on tail workloads (E4).
//
// Centroids (mean, weight) are kept sorted by mean. Incoming values buffer
// until the buffer fills, then a merge pass sweeps buffer and centroids in
// order, closing a centroid whenever its k-size — the difference of the
// scale function k(q) = δ/(2π)·asin(2q−1) across the centroid — would
// exceed 1. The scale function concentrates resolution near q = 0 and
// q = 1, which is what gives t-digest its tail accuracy.
package tdigest

import (
	"errors"
	"math"
	"sort"
)

// DefaultCompression is the δ parameter used when the caller passes 0.
const DefaultCompression = 200

// Sketch is a merging t-digest. Not safe for concurrent use.
type Sketch struct {
	compression float64
	centroids   []centroid
	buf         []float64
	n           uint64
	minV, maxV  float64
}

type centroid struct {
	mean   float64
	weight uint64
}

// New returns an empty t-digest with the given compression δ (0 means
// DefaultCompression). Larger δ means more centroids and better accuracy.
func New(compression float64) *Sketch {
	if compression <= 0 {
		compression = DefaultCompression
	}
	bufSize := int(8 * compression)
	return &Sketch{
		compression: compression,
		buf:         make([]float64, 0, bufSize),
		minV:        math.Inf(1),
		maxV:        math.Inf(-1),
	}
}

// Compression returns δ.
func (s *Sketch) Compression() float64 { return s.compression }

// N returns the number of values summarised.
func (s *Sketch) N() uint64 { return s.n + uint64(len(s.buf)) }

// ItemsRetained returns the number of centroids plus buffered values.
func (s *Sketch) ItemsRetained() int { return len(s.centroids) + len(s.buf) }

// Update inserts one value. NaN is ignored.
func (s *Sketch) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < s.minV {
		s.minV = v
	}
	if v > s.maxV {
		s.maxV = v
	}
	s.buf = append(s.buf, v)
	if len(s.buf) == cap(s.buf) {
		s.process()
	}
}

// scale is the k₁ scale function.
func (s *Sketch) scale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return s.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// process merges buffered values into the centroid list.
func (s *Sketch) process() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	total := s.n + uint64(len(s.buf))

	merged := make([]centroid, 0, len(s.centroids)+1)
	bi, ci := 0, 0
	var cur centroid
	var seen uint64          // weight fully merged into `merged` plus cur
	kLimit := s.scale(0) + 1 // not used directly; recomputed per centroid
	_ = kLimit

	next := func() (centroid, bool) {
		switch {
		case bi < len(s.buf) && (ci >= len(s.centroids) || s.buf[bi] <= s.centroids[ci].mean):
			c := centroid{mean: s.buf[bi], weight: 1}
			bi++
			return c, true
		case ci < len(s.centroids):
			c := s.centroids[ci]
			ci++
			return c, true
		default:
			return centroid{}, false
		}
	}

	cur, ok := next()
	if !ok {
		return
	}
	qLeft := 0.0
	kLeft := s.scale(qLeft)
	for {
		c, ok := next()
		if !ok {
			break
		}
		qRight := float64(seen+cur.weight+c.weight) / float64(total)
		if s.scale(qRight)-kLeft <= 1 {
			// Absorb c into cur (weighted mean).
			w := cur.weight + c.weight
			cur.mean = cur.mean + (c.mean-cur.mean)*float64(c.weight)/float64(w)
			cur.weight = w
		} else {
			merged = append(merged, cur)
			seen += cur.weight
			qLeft = float64(seen) / float64(total)
			kLeft = s.scale(qLeft)
			cur = c
		}
	}
	merged = append(merged, cur)

	s.centroids = merged
	s.n = total
	s.buf = s.buf[:0]
}

// Rank returns the estimated inclusive rank of y, interpolating linearly
// within centroids (each centroid's mass is assumed uniform around its
// mean, the standard t-digest interpolation).
func (s *Sketch) Rank(y float64) uint64 {
	s.process()
	if s.n == 0 {
		return 0
	}
	if y < s.minV {
		return 0
	}
	if y >= s.maxV {
		return s.n
	}
	cs := s.centroids
	// Cumulative weight strictly before centroid i plus half of i gives the
	// rank of the centroid mean.
	var before uint64
	for i := range cs {
		if y < cs[i].mean {
			// Interpolate between previous mean (or min) and this mean.
			var loVal, loRank float64
			if i == 0 {
				loVal, loRank = s.minV, 0
			} else {
				loVal = cs[i-1].mean
				loRank = float64(before) - float64(cs[i-1].weight)/2
			}
			hiVal := cs[i].mean
			hiRank := float64(before) + float64(cs[i].weight)/2
			if hiVal <= loVal {
				return uint64(math.Max(0, hiRank))
			}
			frac := (y - loVal) / (hiVal - loVal)
			r := loRank + frac*(hiRank-loRank)
			if r < 0 {
				r = 0
			}
			return uint64(r + 0.5)
		}
		before += cs[i].weight
	}
	return s.n
}

// Quantile returns the estimated φ-quantile, φ ∈ [0, 1].
func (s *Sketch) Quantile(phi float64) (float64, error) {
	s.process()
	if s.n == 0 {
		return 0, errors.New("tdigest: empty sketch")
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("tdigest: rank out of [0, 1]")
	}
	if phi == 0 {
		return s.minV, nil
	}
	if phi == 1 {
		return s.maxV, nil
	}
	target := phi * float64(s.n)
	cs := s.centroids
	var before uint64
	for i := range cs {
		midRank := float64(before) + float64(cs[i].weight)/2
		if target <= midRank {
			var loVal, loRank float64
			if i == 0 {
				loVal, loRank = s.minV, 0
			} else {
				loVal = cs[i-1].mean
				loRank = float64(before) - float64(cs[i-1].weight)/2
			}
			if midRank <= loRank {
				return cs[i].mean, nil
			}
			frac := (target - loRank) / (midRank - loRank)
			return loVal + frac*(cs[i].mean-loVal), nil
		}
		before += cs[i].weight
	}
	return s.maxV, nil
}

// Min returns the exact minimum. ok is false when empty.
func (s *Sketch) Min() (float64, bool) {
	if s.N() == 0 {
		return 0, false
	}
	return s.minV, true
}

// Max returns the exact maximum. ok is false when empty.
func (s *Sketch) Max() (float64, bool) {
	if s.N() == 0 {
		return 0, false
	}
	return s.maxV, true
}

// Merge absorbs other into s by replaying other's centroids as weighted
// inserts through the merge pass.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.N() == 0 {
		return nil
	}
	if other == s {
		return errors.New("tdigest: cannot merge a sketch into itself")
	}
	other.process()
	s.process()
	// Append other's centroids and re-merge. Weights are preserved by
	// concatenating centroid lists and running a full merge pass.
	s.centroids = append(s.centroids, other.centroids...)
	sort.Slice(s.centroids, func(i, j int) bool { return s.centroids[i].mean < s.centroids[j].mean })
	s.n += other.n
	if other.minV < s.minV {
		s.minV = other.minV
	}
	if other.maxV > s.maxV {
		s.maxV = other.maxV
	}
	// Re-run the merge pass over the combined centroid list.
	s.recompress()
	return nil
}

// recompress runs the k-limit sweep over the current centroid list.
func (s *Sketch) recompress() {
	if len(s.centroids) == 0 {
		return
	}
	cs := s.centroids
	merged := make([]centroid, 0, len(cs))
	var seen uint64
	cur := cs[0]
	kLeft := s.scale(0)
	for _, c := range cs[1:] {
		qRight := float64(seen+cur.weight+c.weight) / float64(s.n)
		if s.scale(qRight)-kLeft <= 1 {
			w := cur.weight + c.weight
			cur.mean = cur.mean + (c.mean-cur.mean)*float64(c.weight)/float64(w)
			cur.weight = w
		} else {
			merged = append(merged, cur)
			seen += cur.weight
			kLeft = s.scale(float64(seen) / float64(s.n))
			cur = c
		}
	}
	merged = append(merged, cur)
	s.centroids = merged
}
