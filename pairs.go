package req

import (
	"sync"

	"req/internal/core"
	"req/internal/tenant"
)

// Cross-key batched ingest: the wire-format hot path. A caller holding a
// whole batch of (key, value) pairs — a scrape, a flush from an upstream
// aggregator, a decoded wire frame — hands it to UpdatePairs, which plans
// the batch once (one hash pass, same-key items chained into runs, runs
// counting-sorted by shard) and then walks it shard by shard: each shard
// lock is taken once per batch, each distinct key's cell is resolved once
// per run, and each run is fed through the sketch's batch ingest path so
// the monomorphic kernels apply. Against the per-item loop this amortizes
// the maphash, the lock round-trip, the map lookup, and the TTL/eviction
// bookkeeping across every item of a run, and the sketch-level batch
// amortizations (min/max, bound checks, sorted-prefix extension) on top.
//
// # Ordering contract
//
// Within one batch, each key's items are applied in their input order;
// pairs with different keys may be reordered relative to each other (the
// batch is applied shard by shard, not left to right). Mergeability
// (Theorem 3) makes cross-key reordering free: every per-key sketch sees
// exactly the per-key subsequence it would have seen from the per-item
// loop. Each key is resolved exactly once per batch, so TTL refresh,
// lazy creation, and eviction pressure are charged per (key, batch), not
// per item — under capacity pressure a batch behaves like one access per
// distinct key. The whole batch is stamped with a single clock reading.
//
// All planning and gather scratch is pooled and grow-only: steady-state
// UpdatePairs allocates nothing.

// KV pairs one key with one value for the []KV convenience front,
// UpdateKVs — the natural decode target for a wire frame.
type KV[K comparable, T any] struct {
	Key   K
	Value T
}

// resolveBlock is how many runs the two-phase shard walk resolves ahead
// of ingesting them: large enough that the independent map probes fill
// the memory system's miss parallelism, small enough that a block's cells
// and level-0 lines (a few cache lines per run) still fit in L1/L2 when
// the ingest phase comes back for them.
const resolveBlock = 64

// pairScratch is the pooled per-call scratch of the batched ingest
// pipeline: the tenant-side plan, the resolved-cell buffer for the
// two-phase shard walk, the gather buffer for non-contiguous runs, and
// the parallel-slice staging used by UpdateKVs and the NaN filtering
// fronts. Grow-only; reused verbatim across batches. The cell pointers
// left behind after a batch point into the owning registry's arenas,
// which live exactly as long as the registry that owns the pool.
type pairScratch[K comparable, E, T any] struct {
	batch tenant.Batch[K]
	cells []*E
	run   []T
	keys  []K
	vals  []T
	// hint receives each resolved cell's PrefetchHint in the two-phase
	// walk: a real store the compiler cannot elide, keeping the
	// prefetching loads alive.
	hint T
}

// getPairScratch pops a scratch from the pool (allocating only on a cold
// pool). Pools hold *pairScratch, so no boxing happens on Put.
func getPairScratch[K comparable, E, T any](pool *sync.Pool) *pairScratch[K, E, T] {
	if sc, _ := pool.Get().(*pairScratch[K, E, T]); sc != nil {
		return sc
	}
	return new(pairScratch[K, E, T])
}

// updatePairs is the shared pipeline under every UpdatePairs front:
// Registry and WindowedRegistry differ only in their entry payload and in
// what "ingest one run" means, passed as ingest (a top-level function, so
// no closure is allocated). ep is the windowed epoch (unused by the plain
// registry).
func updatePairs[K comparable, E, T any](
	m *tenant.Map[K, E], pool *sync.Pool, now, ep int64,
	keys []K, items []T,
	touch func(e *E, ep int64) T, ingest func(e *E, ep int64, run []T),
) {
	sc := getPairScratch[K, E, T](pool)
	m.PlanBatch(&sc.batch, keys)
	n := sc.batch.Runs()
	for i := 0; i < n; {
		_, _, shard := sc.batch.Run(i)
		sh := m.LockShard(shard)
		i = ingestShardRuns(m, sh, sc, keys, items, now, ep, i, shard, touch, ingest)
		sh.Unlock()
	}
	pool.Put(sc)
}

// ingestShardRuns feeds every run of one shard, starting at plan index i,
// and returns the index of the first run belonging to a different shard.
// Contiguous runs (every same-key item adjacent in the input) are sliced
// straight out of the caller's array; scattered runs are gathered once
// into the reused scratch buffer.
//
// When no creation in this shard's slice of the batch can trigger the
// eviction hand (RoomFor), the walk is two-phase: a tight loop resolves
// a block of runs' cells first, then a second loop ingests the block. The
// resolve loop's iterations are independent, so the per-key map probe and
// cell touch — the cache misses that dominate large-population ingest —
// overlap in the memory system instead of serializing behind each run's
// sketch work. The phases alternate in blocks of resolveBlock runs rather
// than over the whole shard range, so the lines the resolve phase pulls
// are still resident when the ingest phase reaches them (a whole-range
// pass over thousands of runs would evict its own prefetches).
// Under capacity pressure the phases stay interleaved run by run: an
// eviction in the resolve phase could reclaim a cell resolved earlier in
// the same batch, which the run-at-a-time order makes impossible (a run's
// items are in its key's sketch before any later creation can evict the
// cell).
//
// +req:locksRequired(sh.mu)
func ingestShardRuns[K comparable, E, T any](
	m *tenant.Map[K, E], sh *tenant.Shard[K, E], sc *pairScratch[K, E, T],
	keys []K, items []T, now, ep int64, i, shard int,
	touch func(e *E, ep int64) T, ingest func(e *E, ep int64, run []T),
) int {
	b := &sc.batch
	n := b.Runs()
	end := i
	for ; end < n; end++ {
		if _, _, s := b.Run(end); s != shard {
			break
		}
	}
	if m.RoomFor(sh, end-i) {
		for i < end {
			blk := min(end, i+resolveBlock)
			cells := sc.cells[:0]
			for j := i; j < blk; j++ {
				head, _, _ := b.Run(j)
				e, _ := m.GetOrCreateRun(sh, keys[head], now)
				sc.hint = touch(e, ep)
				cells = append(cells, e)
			}
			sc.cells = cells
			for j := i; j < blk; j++ {
				ingest(cells[j-i], ep, runItems(sc, items, j))
			}
			i = blk
		}
		return end
	}
	for ; i < end; i++ {
		head, _, _ := b.Run(i)
		e, _ := m.GetOrCreateRun(sh, keys[head], now)
		ingest(e, ep, runItems(sc, items, i))
	}
	return i
}

// runItems materializes plan run i's item sequence: a direct slice of the
// caller's array when the run is contiguous, otherwise a gather into the
// reused scratch buffer (valid until the next runItems call).
func runItems[K comparable, E, T any](sc *pairScratch[K, E, T], items []T, i int) []T {
	b := &sc.batch
	head, cnt, _ := b.Run(i)
	if b.Contiguous(i) {
		return items[head : head+cnt]
	}
	sc.run = sc.run[:0]
	for j := head; j >= 0; j = b.Next(j) {
		sc.run = append(sc.run, items[j])
	}
	return sc.run
}

// regTouch is the plain registry's resolve-phase prefetch hook: pull the
// key's level-0 append line while neighboring probes are still in flight.
func regTouch[T any](e *regEntry[T], _ int64) T {
	return e.sk.PrefetchHint()
}

// regIngest is the plain registry's run-ingest hook: the run goes straight
// into the key's sketch.
func regIngest[T any](e *regEntry[T], _ int64, run []T) {
	e.sk.IngestRun(run)
}

// winTouch prefetches the batch epoch's ring slot — the sketch winIngest
// will write — without rotating it (pure read; rotation stays in the
// ingest phase).
func winTouch[T any](e *winEntry[T], ep int64) T {
	return e.ring[int(ep%int64(len(e.ring)))].PrefetchHint()
}

// winIngest is the windowed registry's run-ingest hook: the key's live
// slot for the batch's epoch is resolved (rotating lazily) once per run,
// then the run goes into that slot.
func winIngest[T any](e *winEntry[T], ep int64, run []T) {
	i := int(ep % int64(len(e.ring)))
	if e.epochs[i] != ep {
		e.ring[i].Reset()
		e.epochs[i] = ep
	}
	e.ring[i].IngestRun(run)
}

// UpdatePairs inserts items[i] into keys[i]'s sketch for every i, creating
// absent keys lazily, through the shard-grouped batch pipeline (see the
// package section above for the ordering contract). The slices must have
// equal length; both are only read, never retained. Steady-state calls
// allocate nothing.
func (r *Registry[K, T]) UpdatePairs(keys []K, items []T) {
	if len(keys) != len(items) {
		panic("req: UpdatePairs slices of unequal length")
	}
	if len(keys) == 0 {
		return
	}
	updatePairs(r.m, r.pairs, r.now(), 0, keys, items, regTouch[T], regIngest[T])
}

// UpdateKVs is UpdatePairs over one slice of KV pairs — the wire-format
// convenience. The pairs are split into pooled parallel key/value slices
// and fed through the same pipeline.
func (r *Registry[K, T]) UpdateKVs(kvs []KV[K, T]) {
	if len(kvs) == 0 {
		return
	}
	sc := getPairScratch[K, regEntry[T], T](r.pairs)
	sc.keys, sc.vals = splitKVs(sc.keys[:0], sc.vals[:0], kvs)
	r.UpdatePairs(sc.keys, sc.vals)
	r.pairs.Put(sc)
}

// splitKVs unzips kvs onto the (truncated, reused) parallel slices.
func splitKVs[K comparable, T any](keys []K, vals []T, kvs []KV[K, T]) ([]K, []T) {
	for i := range kvs {
		keys = append(keys, kvs[i].Key)
		vals = append(vals, kvs[i].Value)
	}
	return keys, vals
}

// UpdatePairs inserts items[i] into keys[i]'s current window slot for every
// i, creating absent keys lazily. The batch is planned once and applied
// shard by shard exactly like Registry.UpdatePairs, with one addition: the
// epoch is computed once from a single clock reading, and each run
// resolves its key's live slot once (rotating lazily) rather than per
// item. Steady-state calls allocate nothing.
func (w *WindowedRegistry[K, T]) UpdatePairs(keys []K, items []T) {
	if len(keys) != len(items) {
		panic("req: UpdatePairs slices of unequal length")
	}
	if len(keys) == 0 {
		return
	}
	now := w.now()
	updatePairs(w.m, w.pairs, now, w.epoch(now), keys, items, winTouch[T], winIngest[T])
}

// UpdateKVs is UpdatePairs over one slice of KV pairs; see
// Registry.UpdateKVs.
func (w *WindowedRegistry[K, T]) UpdateKVs(kvs []KV[K, T]) {
	if len(kvs) == 0 {
		return
	}
	sc := getPairScratch[K, winEntry[T], T](w.pairs)
	sc.keys, sc.vals = splitKVs(sc.keys[:0], sc.vals[:0], kvs)
	w.UpdatePairs(sc.keys, sc.vals)
	w.pairs.Put(sc)
}

// UpdatePairs inserts vs[i] into keys[i]'s sketch for every i, skipping
// NaN values (their keys are skipped in tandem, so a NaN never creates or
// touches a key). The pair slices are compacted into pooled scratch only
// when a NaN is present; the all-clean fast path is one dispatched scan.
func (r *RegistryFloat64) UpdatePairs(keys []string, vs []float64) {
	if len(keys) != len(vs) {
		panic("req: UpdatePairs slices of unequal length")
	}
	if !core.HasNaN(vs) {
		r.Registry.UpdatePairs(keys, vs)
		return
	}
	sc := getPairScratch[string, regEntry[float64], float64](r.pairs)
	sc.keys, sc.vals = core.FilterNaNPairsInto(sc.keys[:0], sc.vals[:0], keys, vs)
	r.Registry.UpdatePairs(sc.keys, sc.vals)
	r.pairs.Put(sc)
}

// UpdateKVs is UpdatePairs over one slice of KV pairs, skipping pairs
// whose value is NaN.
func (r *RegistryFloat64) UpdateKVs(kvs []KV[string, float64]) {
	sc := getPairScratch[string, regEntry[float64], float64](r.pairs)
	sc.keys, sc.vals = sc.keys[:0], sc.vals[:0]
	for i := range kvs {
		if v := kvs[i].Value; v == v { // not NaN
			sc.keys = append(sc.keys, kvs[i].Key)
			sc.vals = append(sc.vals, v)
		}
	}
	r.Registry.UpdatePairs(sc.keys, sc.vals)
	r.pairs.Put(sc)
}

// UpdatePairs inserts vs[i] into keys[i]'s current window slot for every
// i, skipping NaN values and their keys in tandem; see
// RegistryFloat64.UpdatePairs.
func (w *WindowedRegistryFloat64) UpdatePairs(keys []string, vs []float64) {
	if len(keys) != len(vs) {
		panic("req: UpdatePairs slices of unequal length")
	}
	if !core.HasNaN(vs) {
		w.WindowedRegistry.UpdatePairs(keys, vs)
		return
	}
	sc := getPairScratch[string, winEntry[float64], float64](w.pairs)
	sc.keys, sc.vals = core.FilterNaNPairsInto(sc.keys[:0], sc.vals[:0], keys, vs)
	w.WindowedRegistry.UpdatePairs(sc.keys, sc.vals)
	w.pairs.Put(sc)
}

// UpdateKVs is UpdatePairs over one slice of KV pairs, skipping pairs
// whose value is NaN.
func (w *WindowedRegistryFloat64) UpdateKVs(kvs []KV[string, float64]) {
	sc := getPairScratch[string, winEntry[float64], float64](w.pairs)
	sc.keys, sc.vals = sc.keys[:0], sc.vals[:0]
	for i := range kvs {
		if v := kvs[i].Value; v == v { // not NaN
			sc.keys = append(sc.keys, kvs[i].Key)
			sc.vals = append(sc.vals, v)
		}
	}
	w.WindowedRegistry.UpdatePairs(sc.keys, sc.vals)
	w.pairs.Put(sc)
}
