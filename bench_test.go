package req

// Benchmark suite: one testing.B target per table/figure of DESIGN.md's
// experiment index (T1 throughput tables plus the E* reproduction metrics;
// the full-scale versions with commentary live in cmd/reqbench).
//
// Accuracy/space benches report their quantity of interest through
// b.ReportMetric (items/sketch, relerr, violations) so `go test -bench`
// regenerates every table's numbers in one run.

import (
	"fmt"
	"math"
	"testing"

	"req/internal/core"
	"req/internal/exact"
	"req/internal/expsampler"
	"req/internal/gk"
	"req/internal/kll"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/schedule"
	"req/internal/stats"
	"req/internal/streams"
	"req/internal/tdigest"
)

// benchValues returns a deterministic pseudo-random value stream.
func benchValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 1e6
	}
	return out
}

// --- T1: update throughput ---------------------------------------------------

func BenchmarkUpdateREQ(b *testing.B) {
	for _, eps := range []float64{0.1, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			vals := benchValues(1<<16, 1)
			s, err := NewFloat64(WithEpsilon(eps), WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(vals[i&(1<<16-1)])
			}
		})
	}
}

func BenchmarkUpdateREQHRA(b *testing.B) {
	vals := benchValues(1<<16, 1)
	s, err := NewFloat64(WithEpsilon(0.01), WithHighRankAccuracy(), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

// BenchmarkUpdateBatchREQ measures batch ingest normalized per item, so
// ns/op compares directly against BenchmarkUpdateREQ's per-item path.
func BenchmarkUpdateBatchREQ(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			vals := benchValues(size, 1)
			s, err := NewFloat64(WithEpsilon(0.01), WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				s.UpdateBatch(vals)
			}
		})
	}
}

// BenchmarkParallelIngestShardedBatch is the sharded writer path fed in
// 512-value batches per lock acquisition.
func BenchmarkParallelIngestShardedBatch(b *testing.B) {
	s, err := NewShardedFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	const size = 512
	vals := benchValues(size, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for i := 0; pb.Next(); i++ {
			if i%size == 0 {
				s.UpdateBatch(vals)
			}
		}
	})
}

func BenchmarkUpdateKLL(b *testing.B) {
	vals := benchValues(1<<16, 1)
	s := kll.New(kll.KForEpsilon(0.01), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

func BenchmarkUpdateGK(b *testing.B) {
	vals := benchValues(1<<16, 1)
	s, err := gk.New(0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

func BenchmarkUpdateTDigest(b *testing.B) {
	vals := benchValues(1<<16, 1)
	s := tdigest.New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

func BenchmarkUpdateExpSampler(b *testing.B) {
	vals := benchValues(1<<16, 1)
	s, err := expsampler.New(0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

// --- T1: concurrent ingestion throughput ---------------------------------------

// concurrentIngester is the surface shared by the two thread-safe wrappers,
// so one benchmark body covers both.
type concurrentIngester interface {
	Update(float64)
	Quantile(float64) (float64, error)
	Count() uint64
}

// benchParallelIngest hammers Update from every benchmark goroutine
// (GOMAXPROCS of them by default; scale with -cpu 1,4,8).
func benchParallelIngest(b *testing.B, s concurrentIngester) {
	vals := benchValues(1<<16, 1)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Update(vals[i&(1<<16-1)])
			i++
		}
	})
}

func BenchmarkParallelIngestMutex(b *testing.B) {
	s, err := NewConcurrentFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	benchParallelIngest(b, s)
}

func BenchmarkParallelIngestSharded(b *testing.B) {
	s, err := NewShardedFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	benchParallelIngest(b, s)
}

// benchMixedReadWrite interleaves a quantile query and a count read into
// the write stream every 256 operations per goroutine — the monitoring
// pattern (heavy ingest, periodic scrape).
func benchMixedReadWrite(b *testing.B, s concurrentIngester) {
	vals := benchValues(1<<16, 1)
	for i := 0; i < 1024; i++ {
		s.Update(vals[i])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i&255 == 255 {
				if _, err := s.Quantile(0.99); err != nil {
					b.Fatal(err)
				}
				_ = s.Count()
			} else {
				s.Update(vals[i&(1<<16-1)])
			}
			i++
		}
	})
}

func BenchmarkMixedReadWriteMutex(b *testing.B) {
	s, err := NewConcurrentFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	benchMixedReadWrite(b, s)
}

func BenchmarkMixedReadWriteSharded(b *testing.B) {
	s, err := NewShardedFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	benchMixedReadWrite(b, s)
}

// BenchmarkShardedSnapshot measures the cost of the lazy merged-snapshot
// rebuild that a query pays after writes touched every shard.
func BenchmarkShardedSnapshot(b *testing.B) {
	s, err := NewShardedFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	vals := benchValues(1<<20, 2)
	for _, v := range vals {
		s.Update(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Invalidate so every iteration pays one full rebuild.
		s.Update(vals[i&(1<<20-1)])
		if _, err := s.Quantile(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotREQ measures the immutable-snapshot path: capturing a
// Snapshot from a plain sketch (one deep copy of the frozen coreset),
// re-capturing after a single write (pays an incremental view repair plus
// the copy), and querying a captured snapshot (a pure indexed read, no
// locks).
func BenchmarkSnapshotREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	vals := benchValues(1<<20, 2)
	s.UpdateAll(vals)
	b.Run("capture", func(b *testing.B) {
		s.Freeze()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Snapshot()
		}
	})
	b.Run("capture-after-write", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Update(vals[i&(1<<20-1)])
			_ = s.Snapshot()
		}
	})
	b.Run("query", func(b *testing.B) {
		snap := s.Snapshot()
		qs := benchValues(1024, 3)
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += snap.Rank(qs[i&1023])
		}
		_ = sink
	})
}

// BenchmarkSnapshotShardedREQ measures Snapshot on the sharded wrapper:
// between writes it hands out the published epoch snapshot (an atomic load
// plus staleness check, no clone — "shared"), and after a write it pays the
// epoch rebuild ("after-write", the same restage+merge+freeze the first
// query after a write pays; compare BenchmarkShardedSnapshot).
func BenchmarkSnapshotShardedREQ(b *testing.B) {
	s, err := NewShardedFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	vals := benchValues(1<<20, 2)
	for _, v := range vals {
		s.Update(v)
	}
	b.Run("shared", func(b *testing.B) {
		_ = s.Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Snapshot()
		}
	})
	b.Run("after-write", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Update(vals[i&(1<<20-1)])
			_ = s.Snapshot()
		}
	})
}

// BenchmarkCoresetExportREQ compares the deprecated materializing Retained
// against the allocation-free All iterator on the same coreset.
func BenchmarkCoresetExportREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	s.Freeze()
	b.Run("Retained", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for _, wi := range s.Retained() {
				sink += wi.Weight
			}
		}
		_ = sink
	})
	b.Run("All", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for _, w := range s.All() {
				sink += w
			}
		}
		_ = sink
	})
}

// --- T1: query latency ---------------------------------------------------------

func BenchmarkRankREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	qs := benchValues(1024, 3)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(qs[i&1023])
	}
	_ = sink
}

// BenchmarkRankFrozenREQ measures rank queries on a quiesced (frozen)
// sketch: Rank routes through the cached sorted view, so each query is two
// binary searches instead of any per-level work.
func BenchmarkRankFrozenREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	s.Freeze()
	qs := benchValues(1024, 3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(qs[i&1023])
	}
	_ = sink
}

// BenchmarkMixedREQ interleaves writes and quantile queries at several
// write:read ratios on a single sketch — the monitoring pattern. Every
// query is a first-query-after-writes: it pays the view revalidation, which
// the incremental tail repair turns from a full k-way rebuild into a short
// merge pass whenever the writes since the last query stayed on level 0.
func BenchmarkMixedREQ(b *testing.B) {
	for _, writes := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("w:r=%d:1", writes), func(b *testing.B) {
			s, err := NewFloat64(WithEpsilon(0.01), WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			vals := benchValues(1<<20, 2)
			s.UpdateAll(vals)
			_, _ = s.Quantile(0.5) // warm the view
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%(writes+1) == writes {
					if _, err := s.Quantile(0.99); err != nil {
						b.Fatal(err)
					}
				} else {
					s.Update(vals[i&(1<<20-1)])
				}
			}
		})
	}
}

// BenchmarkRankBatchREQ measures the batch rank API per probe on a frozen
// sketch (unsorted probe sets; the batch sorts an index permutation once
// and answers with one galloping sweep). Compare against the single-probe
// cost of BenchmarkRankFrozenREQ.
func BenchmarkRankBatchREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	s.Freeze()
	for _, size := range []int{16, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			probes := benchValues(size, 3)
			dst := make([]uint64, 0, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				dst = s.RankBatch(dst, probes)
			}
		})
	}
}

func BenchmarkQuantileREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	_, _ = s.Quantile(0.5) // build the sorted view once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := float64(i&1023) / 1024
		if _, err := s.Quantile(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeREQ(b *testing.B) {
	// Rebuilding inputs per iteration would swamp the run, so the target is
	// reconstituted from a pre-serialized blob each round (decode cost is
	// excluded via timer control) and merges the same source sketch.
	x, _ := NewFloat64(WithEpsilon(0.02), WithSeed(1))
	y, _ := NewFloat64(WithEpsilon(0.02), WithSeed(2))
	x.UpdateAll(benchValues(1<<15, 3))
	y.UpdateAll(benchValues(1<<15, 4))
	blob, err := x.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		target, err := DecodeFloat64(blob)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := target.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeSteadyREQ merges into one long-lived target, the shape of
// a fan-in aggregator. After the first merge has grown the target's
// reusable settle scratch and special-compaction stage, subsequent merges
// stop allocating for those steps (compare allocs/op with BenchmarkMergeREQ,
// whose target is reconstituted from a blob every iteration).
func BenchmarkMergeSteadyREQ(b *testing.B) {
	x, _ := NewFloat64(WithEpsilon(0.02), WithSeed(1))
	y, _ := NewFloat64(WithEpsilon(0.02), WithSeed(2))
	x.UpdateAll(benchValues(1<<15, 3))
	y.UpdateAll(benchValues(1<<15, 4))
	if err := x.Merge(y); err != nil { // warm scratch, stage, capacities
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCloneREQ deep-copies a grown sketch — the per-call cost a
// snapshot-per-request or fork-the-state workload pays. Sensitive to how
// level storage is laid out: fragmented per-level buffers cost O(levels)
// allocations and copies, a contiguous slab one of each.
func BenchmarkCloneREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

func BenchmarkSerializeREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	blob, err := s.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeserializeREQ(b *testing.B) {
	s, _ := NewFloat64(WithEpsilon(0.01), WithSeed(1))
	s.UpdateAll(benchValues(1<<20, 2))
	blob, err := s.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFloat64(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-series: reproduction metrics (scaled down; full runs in reqbench) -------

// reportRelErr runs one accuracy trial and reports the worst relative error
// over log-spaced ranks as the bench metric.
func relErrOnce(cfg core.Config, n int, order streams.Order, seed uint64) float64 {
	r := rng.New(seed)
	vals := streams.Permutation{}.Generate(n, r)
	streams.Arrange(vals, order, r)
	cfg.Seed = seed
	sk, err := quantile.NewREQ(cfg, "req")
	if err != nil {
		panic(err)
	}
	for _, v := range vals {
		sk.Update(v)
	}
	worst := 0.0
	for rank := uint64(1); rank <= uint64(n); rank *= 2 {
		est := float64(sk.Rank(float64(rank - 1)))
		rel := stats.RelErr(est, float64(rank))
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func BenchmarkE1ErrorVsRank(b *testing.B) {
	const n = 1 << 15
	worst := 0.0
	for i := 0; i < b.N; i++ {
		w := relErrOnce(core.Config{Eps: 0.05, Delta: 0.05}, n, streams.OrderAsGenerated, uint64(i))
		if w > worst {
			worst = w
		}
	}
	b.ReportMetric(worst, "max-relerr")
}

func BenchmarkE2SpaceVsN(b *testing.B) {
	for _, pow := range []int{14, 16, 18} {
		pow := pow
		b.Run(fmt.Sprintf("n=2^%d", pow), func(b *testing.B) {
			items := 0
			for i := 0; i < b.N; i++ {
				sk, _ := quantile.NewREQ(core.Config{Eps: 0.02, Delta: 0.05, Seed: uint64(i)}, "req")
				r := rng.New(uint64(i))
				for _, v := range r.Perm(1 << pow) {
					sk.Update(float64(v))
				}
				items = sk.ItemsRetained()
			}
			b.ReportMetric(float64(items), "items/sketch")
		})
	}
}

func BenchmarkE3SpaceVsEps(b *testing.B) {
	for _, eps := range []float64{0.1, 0.05, 0.02} {
		eps := eps
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			var reqItems, samplerItems int
			for i := 0; i < b.N; i++ {
				vals := benchValues(1<<15, uint64(i))
				sk, _ := quantile.NewREQ(core.Config{Eps: eps, Delta: 0.05, Seed: uint64(i)}, "req")
				sm, _ := expsampler.New(eps, uint64(i))
				for _, v := range vals {
					sk.Update(v)
					sm.Update(v)
				}
				reqItems, samplerItems = sk.ItemsRetained(), sm.ItemsRetained()
			}
			b.ReportMetric(float64(reqItems), "req-items")
			b.ReportMetric(float64(samplerItems), "sampler-items")
		})
	}
}

func BenchmarkE4TailAccuracy(b *testing.B) {
	const n = 1 << 16
	var reqErr, kllErr float64
	for i := 0; i < b.N; i++ {
		vals := streams.Latency{}.Generate(n, rng.New(uint64(i)))
		oracle := exact.FromValues(vals)
		hra, _ := NewFloat64(WithEpsilon(0.01), WithHighRankAccuracy(), WithSeed(uint64(i)))
		kl := kll.New(kll.KForEpsilon(0.01), uint64(i))
		for _, v := range vals {
			hra.Update(v)
			kl.Update(v)
		}
		nf := float64(n)
		rank := uint64(0.999 * nf)
		y := oracle.ItemOfRank(rank)
		truth := float64(oracle.Rank(y))
		tail := float64(n) - truth + 1
		reqErr = math.Abs(float64(hra.Rank(y))-truth) / tail
		kllErr = math.Abs(float64(kl.Rank(y))-truth) / tail
	}
	b.ReportMetric(reqErr, "req-p999-tailerr")
	b.ReportMetric(kllErr, "kll-p999-tailerr")
}

func BenchmarkE5FailureProb(b *testing.B) {
	const n = 1 << 13
	const eps = 0.1
	violations, checks := 0, 0
	for i := 0; i < b.N; i++ {
		sk, _ := quantile.NewREQ(core.Config{Eps: eps, Delta: 0.1, Seed: uint64(i)}, "req")
		r := rng.New(uint64(i) + 999)
		for _, v := range r.Perm(n) {
			sk.Update(float64(v))
		}
		for rank := uint64(1); rank <= n; rank *= 4 {
			est := float64(sk.Rank(float64(rank - 1)))
			if stats.RelErr(est, float64(rank)) > eps {
				violations++
			}
			checks++
		}
	}
	b.ReportMetric(float64(violations)/float64(checks), "violation-rate")
}

func BenchmarkE6Mergeability(b *testing.B) {
	const n = 1 << 15
	const shards = 8
	worst := 0.0
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		perm := r.Perm(n)
		var acc *core.Sketch[float64]
		for s := 0; s < shards; s++ {
			sk, _ := core.New(core.LessF64,
				core.Config{Eps: 0.05, Delta: 0.05, Seed: uint64(i*100 + s)})
			for j := s; j < n; j += shards {
				sk.Update(float64(perm[j]))
			}
			if acc == nil {
				acc = sk
			} else if err := acc.Merge(sk); err != nil {
				b.Fatal(err)
			}
		}
		for rank := uint64(1); rank <= n; rank *= 4 {
			rel := stats.RelErr(float64(acc.Rank(float64(rank-1))), float64(rank))
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst, "max-relerr")
}

func BenchmarkE7OrderRobustness(b *testing.B) {
	for _, order := range []streams.Order{streams.OrderSorted, streams.OrderReversed, streams.OrderZipper} {
		order := order
		b.Run(order.String(), func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				w := relErrOnce(core.Config{Eps: 0.05, Delta: 0.05}, 1<<14, order, uint64(i))
				if w > worst {
					worst = w
				}
			}
			b.ReportMetric(worst, "max-relerr")
		})
	}
}

func BenchmarkE8UnknownN(b *testing.B) {
	const n = 1 << 16
	var growths uint64
	var items int
	for i := 0; i < b.N; i++ {
		sk, _ := quantile.NewREQ(core.Config{Eps: 0.05, Delta: 0.05, N0: 1 << 12, Seed: uint64(i)}, "req")
		r := rng.New(uint64(i))
		for _, v := range r.Perm(n) {
			sk.Update(float64(v))
		}
		growths = sk.Core().Stats().Growths
		items = sk.ItemsRetained()
	}
	b.ReportMetric(float64(growths), "growths")
	b.ReportMetric(float64(items), "items/sketch")
}

func BenchmarkE9DeltaScaling(b *testing.B) {
	for _, delta := range []float64{1e-2, 1e-6, 1e-12} {
		delta := delta
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			var thm1, thm2 int
			for i := 0; i < b.N; i++ {
				vals := benchValues(1<<15, uint64(i))
				a, _ := quantile.NewREQ(core.Config{Eps: 0.05, Delta: delta, Seed: uint64(i)}, "a")
				c, _ := quantile.NewREQ(core.Config{Mode: core.ModeTheorem2, Eps: 0.05, Delta: delta, Seed: uint64(i)}, "c")
				for _, v := range vals {
					a.Update(v)
					c.Update(v)
				}
				thm1, thm2 = a.ItemsRetained(), c.ItemsRetained()
			}
			b.ReportMetric(float64(thm1), "thm1-items")
			b.ReportMetric(float64(thm2), "thm2-items")
		})
	}
}

func BenchmarkE10Deterministic(b *testing.B) {
	worst := 0.0
	for i := 0; i < b.N; i++ {
		w := relErrOnce(core.Config{Mode: core.ModeTheorem2, Eps: 0.1, Delta: 1e-18},
			1<<14, streams.OrderZipper, uint64(i))
		if w > worst {
			worst = w
		}
	}
	b.ReportMetric(worst, "max-relerr")
}

func BenchmarkE11ScheduleAblation(b *testing.B) {
	for _, kind := range []schedule.Kind{schedule.Exponential, schedule.Naive} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				w := relErrOnce(core.Config{Eps: 0.05, Delta: 0.05, Schedule: kind},
					1<<14, streams.OrderZipper, uint64(i))
				if w > worst {
					worst = w
				}
			}
			b.ReportMetric(worst, "max-relerr")
		})
	}
}

func BenchmarkE12CoinAblation(b *testing.B) {
	const n = 1 << 14
	bias := 0.0
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Eps: 0.05, Delta: 0.05, DetCoin: true, Seed: uint64(i)}
		sk, _ := quantile.NewREQ(cfg, "req-det")
		for j := 0; j < n; j++ {
			sk.Update(float64(j))
		}
		var sum float64
		var cnt int
		for rank := uint64(64); rank <= n; rank *= 2 {
			est := float64(sk.Rank(float64(rank - 1)))
			sum += stats.SignedRelErr(est, float64(rank))
			cnt++
		}
		bias = sum / float64(cnt)
	}
	b.ReportMetric(bias, "mean-signed-err")
}

func BenchmarkE13LowerBound(b *testing.B) {
	correct, total := 0, 0
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		lb, err := streams.NewLowerBound(0.05, 7, 1<<16, r)
		if err != nil {
			b.Fatal(err)
		}
		vals := lb.Values()
		streams.Arrange(vals, streams.OrderShuffled, r)
		sk, _ := quantile.NewREQ(core.Config{Eps: 0.05 / 3, Delta: 1e-9, Seed: uint64(i)}, "req")
		for _, v := range vals {
			sk.Update(v)
		}
		decoded := lb.Decode(sk.Rank)
		for j := range decoded {
			if decoded[j] == lb.S[j] {
				correct++
			}
			total++
		}
	}
	b.ReportMetric(float64(correct)/float64(total), "decode-rate")
}

func BenchmarkE14Levels(b *testing.B) {
	const n = 1 << 18
	var levels int
	for i := 0; i < b.N; i++ {
		sk, _ := quantile.NewREQ(core.Config{Eps: 0.05, Delta: 0.05, Seed: uint64(i)}, "req")
		r := rng.New(uint64(i))
		for _, v := range r.Perm(n) {
			sk.Update(float64(v))
		}
		levels = sk.Core().NumLevels()
	}
	b.ReportMetric(float64(levels), "levels")
}
