package req

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAPISurfaceGolden pins the package's exported surface: every exported
// type, function, method, variable and constant of package req, as parsed
// from the non-test sources. An accidental addition, removal or rename
// fails this test with a diff; intentional API changes update the golden
// list below (and should be called out in README/CHANGES).
func TestAPISurfaceGolden(t *testing.T) {
	got := exportedSurface(t)
	want := apiSurfaceGolden
	gotSet := make(map[string]bool, len(got))
	for _, s := range got {
		gotSet[s] = true
	}
	wantSet := make(map[string]bool, len(want))
	for _, s := range want {
		wantSet[s] = true
	}
	var added, removed []string
	for _, s := range got {
		if !wantSet[s] {
			added = append(added, s)
		}
	}
	for _, s := range want {
		if !gotSet[s] {
			removed = append(removed, s)
		}
	}
	if len(added) > 0 || len(removed) > 0 {
		t.Fatalf("exported API surface changed.\nadded (%d):\n  %s\nremoved (%d):\n  %s\nfull current surface:\n  %s",
			len(added), strings.Join(added, "\n  "),
			len(removed), strings.Join(removed, "\n  "),
			strings.Join(got, "\n  "))
	}
}

// exportedSurface parses the package sources and returns the sorted list of
// exported identifiers: "Name" for types/funcs/vars/consts, "Recv.Name"
// for methods.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv == nil {
					names = append(names, d.Name.Name)
					continue
				}
				recv := receiverTypeName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				names = append(names, fmt.Sprintf("%s.%s", recv, d.Name.Name))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							names = append(names, sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() {
								names = append(names, n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

// receiverTypeName unwraps pointer and generic instantiation syntax around
// a method receiver's type name.
func receiverTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// apiSurfaceGolden is the blessed exported surface of package req.
var apiSurfaceGolden = []string{
	"AllQuantiles",
	"ConcurrentFloat64",
	"ConcurrentFloat64.All",
	"ConcurrentFloat64.CDF",
	"ConcurrentFloat64.CDFInto",
	"ConcurrentFloat64.Count",
	"ConcurrentFloat64.Empty",
	"ConcurrentFloat64.ItemsRetained",
	"ConcurrentFloat64.MarshalBinary",
	"ConcurrentFloat64.Max",
	"ConcurrentFloat64.Merge",
	"ConcurrentFloat64.Min",
	"ConcurrentFloat64.NormalizedRank",
	"ConcurrentFloat64.NormalizedRankBatch",
	"ConcurrentFloat64.PMF",
	"ConcurrentFloat64.PMFInto",
	"ConcurrentFloat64.Quantile",
	"ConcurrentFloat64.Quantiles",
	"ConcurrentFloat64.QuantilesInto",
	"ConcurrentFloat64.Rank",
	"ConcurrentFloat64.RankBatch",
	"ConcurrentFloat64.RankExclusive",
	"ConcurrentFloat64.SaveSnapshot",
	"ConcurrentFloat64.Snapshot",
	"ConcurrentFloat64.Update",
	"ConcurrentFloat64.UpdateAll",
	"ConcurrentFloat64.UpdateBatch",
	"DecodeFloat64",
	"DecodeUint64",
	"ErrBadRank",
	"ErrCorrupt",
	"ErrEmpty",
	"ErrNoKey",
	"ErrNoSnapshot",
	"ErrTornWrite",
	"Float64",
	"Float64.Clone",
	"Float64.MarshalBinary",
	"Float64.Merge",
	"Float64.SaveSnapshot",
	"Float64.UnmarshalBinary",
	"Float64.Update",
	"Float64.UpdateAll",
	"Float64.UpdateBatch",
	"KV",
	"MappedFloat64",
	"MappedSnapshot",
	"MappedSnapshot.Close",
	"MappedSnapshot.Generation",
	"MappedSnapshot.Mapped",
	"MappedUint64",
	"New",
	"NewConcurrentFloat64",
	"NewFloat64",
	"NewRegistry",
	"NewRegistryFloat64",
	"NewRegistryUint64",
	"NewSharded",
	"NewShardedFloat64",
	"NewShardedUint64",
	"NewUint64",
	"NewWindowedRegistry",
	"NewWindowedRegistryFloat64",
	"OpenOption",
	"OpenRegistryFileFloat64",
	"OpenRegistryFileUint64",
	"OpenRegistryFloat64",
	"OpenRegistryUint64",
	"OpenSnapshotFileFloat64",
	"OpenSnapshotFileUint64",
	"OpenSnapshotFloat64",
	"OpenSnapshotUint64",
	"Option",
	"Reader",
	"Registry",
	"Registry.Contains",
	"Registry.Count",
	"Registry.Delete",
	"Registry.Evictions",
	"Registry.ExpireNow",
	"Registry.Len",
	"Registry.NumShards",
	"Registry.Quantile",
	"Registry.QuantilesInto",
	"Registry.Rank",
	"Registry.Reset",
	"Registry.Snapshot",
	"Registry.String",
	"Registry.Update",
	"Registry.UpdateBatch",
	"Registry.UpdateKVs",
	"Registry.UpdatePairs",
	"Registry.Visit",
	"RegistryFloat64",
	"RegistryFloat64.MarshalBinary",
	"RegistryFloat64.SaveRegistry",
	"RegistryFloat64.Update",
	"RegistryFloat64.UpdateBatch",
	"RegistryFloat64.UpdateKVs",
	"RegistryFloat64.UpdatePairs",
	"RegistryFloat64.WriteRegistryFile",
	"RegistrySnapshot",
	"RegistrySnapshot.All",
	"RegistrySnapshot.Generation",
	"RegistrySnapshot.Get",
	"RegistrySnapshot.Len",
	"RegistrySnapshot.String",
	"RegistrySnapshotFloat64",
	"RegistrySnapshotUint64",
	"RegistryUint64",
	"RegistryUint64.MarshalBinary",
	"RegistryUint64.SaveRegistry",
	"RegistryUint64.WriteRegistryFile",
	"Sharded",
	"Sharded.All",
	"Sharded.CDF",
	"Sharded.CDFInto",
	"Sharded.Count",
	"Sharded.Empty",
	"Sharded.ItemsRetained",
	"Sharded.Max",
	"Sharded.Merge",
	"Sharded.Min",
	"Sharded.NormalizedRank",
	"Sharded.NormalizedRankBatch",
	"Sharded.NumShards",
	"Sharded.PMF",
	"Sharded.PMFInto",
	"Sharded.Quantile",
	"Sharded.Quantiles",
	"Sharded.QuantilesInto",
	"Sharded.Rank",
	"Sharded.RankBatch",
	"Sharded.RankExclusive",
	"Sharded.Reset",
	"Sharded.SaveSnapshot",
	"Sharded.Snapshot",
	"Sharded.Update",
	"Sharded.UpdateAll",
	"Sharded.UpdateBatch",
	"Sharded.UpdateWeighted",
	"ShardedFloat64",
	"ShardedFloat64.MarshalBinary",
	"ShardedFloat64.Merge",
	"ShardedFloat64.Update",
	"ShardedFloat64.UpdateAll",
	"ShardedFloat64.UpdateBatch",
	"ShardedUint64",
	"ShardedUint64.MarshalBinary",
	"ShardedUint64.Merge",
	"Sketch",
	"Sketch.All",
	"Sketch.CDF",
	"Sketch.CDFInto",
	"Sketch.Clone",
	"Sketch.Count",
	"Sketch.DebugString",
	"Sketch.Delta",
	"Sketch.Empty",
	"Sketch.Epsilon",
	"Sketch.Freeze",
	"Sketch.Frozen",
	"Sketch.ItemsRetained",
	"Sketch.K",
	"Sketch.Max",
	"Sketch.Merge",
	"Sketch.Min",
	"Sketch.NormalizedRank",
	"Sketch.NormalizedRankBatch",
	"Sketch.NumLevels",
	"Sketch.PMF",
	"Sketch.PMFInto",
	"Sketch.Quantile",
	"Sketch.Quantiles",
	"Sketch.QuantilesInto",
	"Sketch.Rank",
	"Sketch.RankBatch",
	"Sketch.RankBounds",
	"Sketch.RankExclusive",
	"Sketch.Reset",
	"Sketch.Retained",
	"Sketch.Snapshot",
	"Sketch.String",
	"Sketch.Update",
	"Sketch.UpdateAll",
	"Sketch.UpdateBatch",
	"Sketch.UpdateWeighted",
	"Snapshot",
	"Snapshot.All",
	"Snapshot.CDF",
	"Snapshot.CDFInto",
	"Snapshot.Count",
	"Snapshot.Delta",
	"Snapshot.Empty",
	"Snapshot.Epsilon",
	"Snapshot.ItemsRetained",
	"Snapshot.MarshalBinary",
	"Snapshot.Max",
	"Snapshot.Min",
	"Snapshot.NormalizedRank",
	"Snapshot.NormalizedRankBatch",
	"Snapshot.PMF",
	"Snapshot.PMFInto",
	"Snapshot.Quantile",
	"Snapshot.Quantiles",
	"Snapshot.QuantilesInto",
	"Snapshot.Rank",
	"Snapshot.RankBatch",
	"Snapshot.RankExclusive",
	"Snapshot.SaveSnapshot",
	"Snapshot.String",
	"Snapshot.WriteSnapshotFile",
	"SnapshotFloat64",
	"SnapshotUint64",
	"Uint64",
	"Uint64.Clone",
	"Uint64.MarshalBinary",
	"Uint64.Merge",
	"Uint64.SaveSnapshot",
	"Uint64.UnmarshalBinary",
	"UnmarshalRegistryFloat64",
	"UnmarshalRegistryUint64",
	"UnmarshalSnapshotFloat64",
	"UnmarshalSnapshotUint64",
	"VerifyChecksum",
	"VerifyFull",
	"VerifyMode",
	"VerifyNone",
	"WeightedItem",
	"WindowedRegistry",
	"WindowedRegistry.Contains",
	"WindowedRegistry.Count",
	"WindowedRegistry.Delete",
	"WindowedRegistry.Evictions",
	"WindowedRegistry.ExpireNow",
	"WindowedRegistry.Len",
	"WindowedRegistry.NumShards",
	"WindowedRegistry.Quantile",
	"WindowedRegistry.QuantilesInto",
	"WindowedRegistry.Rank",
	"WindowedRegistry.Reset",
	"WindowedRegistry.SlotDuration",
	"WindowedRegistry.Slots",
	"WindowedRegistry.String",
	"WindowedRegistry.Update",
	"WindowedRegistry.UpdateBatch",
	"WindowedRegistry.UpdateKVs",
	"WindowedRegistry.UpdatePairs",
	"WindowedRegistry.WindowDuration",
	"WindowedRegistryFloat64",
	"WindowedRegistryFloat64.Update",
	"WindowedRegistryFloat64.UpdateBatch",
	"WindowedRegistryFloat64.UpdateKVs",
	"WindowedRegistryFloat64.UpdatePairs",
	"WithClock",
	"WithDelta",
	"WithEpsilon",
	"WithHighRankAccuracy",
	"WithK",
	"WithKnownN",
	"WithMaxEntries",
	"WithPaperConstants",
	"WithSeed",
	"WithShards",
	"WithTTL",
	"WithTheorem2Mode",
	"WithVerify",
	"WithWindow",
	"WithoutMmap",
}
