// Package req implements the REQ sketch: streaming quantile estimation with
// relative (multiplicative) rank error, reproducing
//
//	Cormode, Karnin, Liberty, Thaler, Veselý.
//	"Relative Error Streaming Quantiles." PODS 2021. arXiv:2004.01668.
//
// Given a one-pass stream of n items from any totally ordered universe, the
// sketch answers rank queries with guarantee
//
//	|R̂(y) − R(y)| ≤ ε·R(y)   with probability 1 − δ   (Theorem 1)
//
// while storing only O(ε⁻¹·log^1.5(εn)·√log(1/δ)) items. Relative error is
// what tail monitoring needs: an additive-error sketch (KLL, GK) answering a
// p99.99 query can be off by its whole εn budget, while this sketch's error
// shrinks proportionally with the distance from the extreme.
//
// # Quick start
//
//	s, _ := req.NewFloat64(req.WithEpsilon(0.01))
//	for _, v := range latenciesMillis {
//		s.Update(v)
//	}
//	p999, _ := s.Quantile(0.999)       // item at normalized rank 0.999
//	r := s.Rank(250.0)                 // estimated #items ≤ 250 ms
//
// By default the guarantee covers low ranks (and the sketch stores the
// smallest items exactly). For tail monitoring — the common case — request
// high-rank accuracy, which flips the protected side:
//
//	s, _ := req.NewFloat64(req.WithEpsilon(0.01), req.WithHighRankAccuracy())
//
// # Arbitrary item types
//
// The sketch is comparison-based: any type with a strict total order works.
//
//	type Span struct{ Millis float64; TraceID string }
//	s, _ := req.New(func(a, b Span) bool { return a.Millis < b.Millis })
//
// # Merging
//
// Sketches built with the same options merge freely and in any tree shape,
// preserving the guarantee (Theorem 3); streams may be sketched shard-wise
// on different machines and combined later:
//
//	_ = global.Merge(shard1)
//	_ = global.Merge(shard2)
//
// # Readers and snapshots
//
// The API splits into writers and readers. Every container — Sketch[T],
// Float64, Uint64, Sharded[T], ConcurrentFloat64 — satisfies the Reader[T]
// interface, the complete query surface (ranks, quantiles, CDF/PMF, the
// batch variants, and the All coreset iterator), so query-side code can be
// written once against Reader and handed any of them.
//
// Snapshot[T] is the immutable reader: every container's Snapshot() method
// captures the current coreset (plus its rank index) as a Snapshot that
// owns its storage, answers exactly what the source would have answered at
// capture time, and is safe for any number of goroutines with no locks —
// while the source keeps writing. Three tools cover the freeze/copy
// spectrum:
//
//   - Freeze makes the live sketch itself cheap to query (view + rank
//     index materialized in place); the next write undoes it. No copy,
//     no concurrency safety — use it for query-heavy phases on one
//     goroutine.
//   - Snapshot copies the frozen coreset out (on Sharded it is free
//     between writes: the published epoch snapshot is handed out
//     directly, no per-call clone). Use it to hand consistent state to
//     other goroutines, scrape loops, or read replicas.
//   - Clone copies the full mutable state (levels, RNG), so the copy can
//     keep ingesting or merge elsewhere.
//
// The weighted coreset is exported by the Go-1.23-style iterator All —
// every retained item in ascending order with its weight, allocation-free:
//
//	for item, weight := range s.All() { ... }
//
// On a live sketch the iteration walks sketch-owned storage (do not write
// mid-loop); on a Snapshot it is lock-free and immutable. Retained, which
// materializes the same pairs into a slice, is deprecated in favour of All.
//
// # Serialization
//
// Float64 and Uint64 sketches round-trip through encoding.BinaryMarshaler
// / BinaryUnmarshaler, including the internal random-generator state, so a
// restored sketch continues bit-for-bit identically.
//
// Snapshots serialize too, as a query-only record of the same versioned
// format: Snapshot.MarshalBinary encodes just the coreset (items, varint
// weights, min/max, config header) and UnmarshalSnapshotFloat64 /
// UnmarshalSnapshotUint64 restore an immutable queryable Snapshot. Ship
// full sketch state to peers that must keep ingesting or merging; ship
// snapshot records to read replicas that only answer queries — they decode
// straight into the indexed reader, carry no mutable state, and cannot be
// mistaken for a resumable sketch (each decoder rejects the other record
// kind with ErrCorrupt).
//
// # Durability: crash-safe persistence, zero-copy open
//
// Snapshots also persist to disk in a page-aligned slab format that is
// opened zero-copy (see internal/snapstore for the format):
//
//	gen, _ := s.SaveSnapshot(dir)        // any container; new generation
//	m, _ := req.OpenSnapshotFloat64(dir) // newest valid generation, mmap'd
//	defer m.Close()
//	p99, _ := m.Quantile(0.99)           // served from the page cache
//
// SaveSnapshot is atomic: it writes a temp file, fsyncs it, renames it
// into place as the next numbered generation, and fsyncs the directory —
// a crash at any point leaves the previous generation intact, and prior
// generations are pruned only after the new one is durable. OpenSnapshot*
// scans generations newest-first and degrades past damaged files: a
// footer written last detects torn writes in O(1) (ErrTornWrite), a
// CRC32C per section detects bit-rot, and ErrNoSnapshot / ErrCorrupt
// distinguish "nothing saved yet" from "everything damaged". This
// old-or-new recovery contract is proven by the fault-injection crash
// matrix in internal/snapstore, which sweeps a fault budget across every
// byte and metadata operation of a save.
//
// The five frozen-view arrays are stored 64-byte-aligned exactly as they
// live in memory, so on little-endian platforms the returned
// MappedSnapshot aliases the read-only mapping in place: open cost is
// O(1) in the coreset size and queries read straight from the page cache
// with zero per-query allocations. Close unmaps; the mapping stays valid
// even if the file is pruned meanwhile. WithVerify selects the open-time
// verification level (VerifyChecksum by default; VerifyFull adds
// structural validation of the decoded arrays, catching a writer that
// lied under honest checksums; VerifyNone trusts the file for O(1)
// opens), and WithoutMmap forces the portable copying read path used
// automatically wherever mapping or aliasing is unavailable.
//
// Snapshot.WriteSnapshotFile writes one standalone slab file with no
// generation bookkeeping, and OpenSnapshotFileFloat64 / ...Uint64 open
// one; reqcli's save, load, and inspect subcommands expose the same
// machinery (inspect prints a per-section checksum report even for files
// the opener rejects).
//
// # Multi-tenant registry
//
// The "millions of users" workload is per-key quantiles — per-endpoint,
// per-user, per-device latency — not one giant stream. Registry[K, T]
// (and the RegistryFloat64 / RegistryUint64 instantiations) is a
// concurrent keyed collection of sketches built for that population:
//
//	reg, _ := req.NewRegistryFloat64(req.WithK(8),
//	        req.WithMaxEntries(1<<20), req.WithTTL(15*time.Minute))
//	reg.Update("GET /checkout", 12.7) // lazily creates the key's sketch
//	p99, _ := reg.Quantile("GET /checkout", 0.99)
//
// Entries live in per-shard block arenas with freelists (internal/tenant):
// a million-key registry is thousands of allocations, not millions, and
// eviction recycles cells and their grown sketch slabs, so steady-state
// keyed updates, keyed queries, and whole-key churn are all 0 allocs/op.
// WithTTL gives idle keys a lazy time-to-live, WithMaxEntries caps the
// resident population behind a clock-hand second-chance sweep, and
// WithClock injects synthetic time for tests. Visit iterates the
// population allocation-lean; MarshalBinary and SaveRegistry export every
// key's coreset as one blob or one crash-safe snapstore generation
// ("RREG" format), restored by UnmarshalRegistry* / OpenRegistry* as an
// immutable RegistrySnapshot whose per-key answers are bit-identical to
// the live registry's frozen answers at capture time.
//
// # Batched multi-tenant ingest
//
// UpdatePairs (and the []KV front UpdateKVs) ingests a whole (keys,
// items) batch through a shard-grouped pipeline: one pass hashes every
// key, a counting sort groups the batch into per-shard runs in reused
// scratch, and each shard is then locked once per batch — resolving
// every distinct key's cell once and feeding same-key runs through the
// sketch's batch kernels. The ordering contract is exactly what
// mergeability (Theorem 3) makes free: items of the same key are
// ingested in batch order, items of different keys may interleave
// differently than a per-op loop, and the distribution — hence every
// quantile answer — is identical. The whole batch observes one clock
// reading, and each key is charged one TTL/eviction touch per batch
// rather than one per item. Steady-state batched ingest is 0 allocs/op
// (the grouping scratch is pooled and grow-only); batching wins over a
// per-op Update loop by amortizing lock round-trips, hash/map probes,
// and kernel entry across the batch — see BENCH_pr10.json for the
// measured A/B. For NaN hygiene the Float64 fronts drop NaN items
// pairwise before grouping, matching Update's per-op behavior.
//
// WindowedRegistry answers over a trailing time window instead of the
// whole stream: each key carries a ring of sketch slots rotated lazily on
// epoch boundaries, and queries merge the live slots through the
// mergeability guarantee (Theorem 3), so a windowed answer carries the
// same ε budget as a single sketch over the window's items. Merges reuse
// a per-shard stage sketch — steady-state windowed queries are also
// allocation-free. This is the monitoring/SLO shape: per-endpoint p99
// over the last N minutes with keys appearing and expiring as traffic
// shifts (see examples/slo and experiment E17). Windowed UpdatePairs
// resolves each key's live ring slot once per run inside the same
// shard-grouped pipeline, so batched windowed ingest (including lazy
// rotation on epoch boundaries) matches the per-op path bit-for-bit.
//
// # Modes
//
// Three parameterisations are exposed (see the paper's Sections 4, Appendix
// C, and Appendix D):
//
//   - default (mergeable, Theorem 1): space ∝ ε⁻¹·log^1.5(εn)·√log(1/δ)
//   - WithTheorem2Mode: space ∝ ε⁻¹·log²(εn)·log log(1/δ), better for
//     extremely small δ; with tiny δ it is effectively deterministic
//   - WithK: fixed section size, like Apache DataSketches ReqSketch, for
//     users who budget items instead of (ε, δ)
//
// # Performance: sorted compactors and batch ingest
//
// Internally every compactor buffer is kept sorted (level 0 carries a small
// unsorted append tail that is sorted and merged in at compaction time), so
// compaction is merge-based — no buffer is ever fully re-sorted — and the
// amortized update cost is O(log(1/ε)) comparisons, following Ivkin et al.,
// "Streaming Quantiles Algorithms with Small Space and Update Time" (2019).
//
// When values arrive in slices, prefer UpdateBatch over per-item Update: it
// amortizes min/max tracking, view invalidation, stream-length bound checks
// and compaction cascades across the batch (and, on the concurrent
// wrappers, the lock traffic too). Batch and per-item ingest produce
// bit-identical sketches unless a stream-length growth lands mid-batch;
// then the bound is raised once for the whole chunk, which preserves the
// accuracy guarantee but may retain a slightly different coreset.
//
// # Query path and batch queries
//
// Rank queries on a live (recently written) sketch binary-search each
// sorted level; quantile/CDF queries go through a cached sorted view built
// by a k-way merge of the levels. The view is invalidated by writes and
// revalidated lazily on the next view query, and the engine is careful to
// make that revalidation cheap and garbage-free in steady state:
//
//   - The view always rebuilds into the storage of the previous view
//     (grow-only backing arrays), so a long-lived sketch stops allocating
//     on the query path entirely.
//   - When the only writes since the last build were plain updates that
//     stayed in level 0 — the common few-writes-between-queries case — the
//     cached view is repaired by merging the small sorted append tail into
//     it in one linear pass (an order of magnitude cheaper than the k-way
//     merge). Compactions, merges, stream-length growths, and weighted
//     updates force a full, storage-reusing rebuild instead. Both paths
//     answer identically to a from-scratch build.
//
// Freeze additionally builds an Eytzinger-layout (cache-friendly,
// branch-free descent) rank index over the view, making every subsequent
// Rank/Quantile/CDF call a pure indexed read until the next write. Call it
// when entering a query-heavy phase; single queries after writes do not pay
// for it. The concurrent wrappers freeze for you: ConcurrentFloat64 before
// answering under the shared lock, Sharded before publishing an epoch
// snapshot. A Snapshot carries its own copy of the frozen view and index,
// which is why its queries never touch the source again.
//
// When several probes are answered at once, prefer the batch APIs —
// RankBatch, NormalizedRankBatch, QuantilesInto, CDFInto, PMFInto — over a
// loop of single queries. A batch revalidates the view once and visits the
// probes in ascending order with one galloping sweep, so per-probe cost
// amortizes to O(1) comparisons for dense sorted probe sets (unsorted sets
// are routed through a sorted index permutation, or through lockstep index
// descents when large). The ...Into variants write into a caller-supplied
// destination, so a monitoring loop that reuses its slices queries with
// zero allocations end to end.
//
// # Memory layout: the contiguous level store
//
// Every level buffer lives in one grow-only slab owned by the sketch, as a
// window with per-level slack (gap-buffer style):
//
//	slab:   [ level 0 | slack ][ level 1 | slack ] … [ level H | slack ]
//	window: {off₀, cap₀}        {off₁, cap₁}          {off_H, cap_H}
//
// Appends and compaction emissions write in place inside their window;
// when a window fills, its capacity grows ×1.5 and the levels above shift
// right by one overlapping copy each, while the slab itself doubles on
// reallocation — a single amortized copy of everything. Slack is kept
// zeroed so pointer-bearing item types never linger after truncation.
// The payoff is that the whole hierarchy is one object: Clone and CopyFrom
// are a single slab allocation plus one memcpy per level, and
// serialization reads/writes the level section as one pass over contiguous
// memory.
//
// Frozen snapshots follow the same philosophy with an explicit ownership
// rule: Snapshot() copies the frozen view and its rank index into two
// slabs the snapshot owns (two allocations, five memcpys), because the
// source sketch keeps writing; the sharded wrapper's published epoch
// snapshots instead alias their epoch sketch's storage outright, because
// that sketch is immutable from publication on. Own when the source keeps
// writing; alias only when the source is provably frozen.
//
// # Hardware kernels
//
// The generic engine compares items through a less closure, which the
// compiler can neither inline nor vectorize. Sketches built over the
// canonical comparators core.LessF64 / core.LessU64 — which NewFloat64,
// NewUint64, the concurrent wrappers, deserialization, and snapshot open
// all use — install monomorphic kernels (internal/vec) for the hot inner
// loops: sorting, merging, level rank counts, view repair, the k-way
// merge, and the Eytzinger descents. On amd64, the order-insensitive
// scans additionally dispatch to AVX2 assembly, chosen once at init by
// CPUID probe; building with the purego tag opts out of all assembly.
//
// Kernels never change results. Order-sensitive kernels are
// structure-identical transcriptions of the generic code, so equal and
// NaN-incomparable elements land in the same permutation, and the
// vectorized scans are permutation-invariant reductions; differential
// tests pin bit-identical sketch state and answers against the closure
// path, including NaN/±0/±Inf adversarial streams. A custom closure —
// even one computing a < b — keeps the generic path, at closure speed.
//
// # Concurrency
//
// Plain sketches are not safe for concurrent use. Two thread-safe wrappers
// are provided:
//
//   - ConcurrentFloat64 guards one sketch with a read-write mutex. Queries
//     take only the read lock (the sorted view is re-frozen under a brief
//     exclusive lock when a write invalidated it), so read-mostly workloads
//     do not serialize. Every writer still takes the exclusive lock.
//
//   - Sharded (and the ShardedFloat64 / ShardedUint64 convenience types)
//     stripes writers across GOMAXPROCS-scaled per-shard sketches, each
//     behind its own lock, and answers queries from a lazily rebuilt merged
//     snapshot. By Theorem 3 the merge costs no accuracy, so this is the
//     wrapper for write-heavy multi-writer ingestion.
//
//     s, _ := req.NewShardedFloat64(req.WithEpsilon(0.01))
//     // any number of goroutines:
//     s.Update(v)
//     // any goroutine, any time:
//     p99, _ := s.Quantile(0.99)
//
// Choose ConcurrentFloat64 when updates are rare or single-sketch
// determinism matters; choose Sharded when many goroutines ingest hot
// streams. Sharding per goroutine with plain sketches and merging manually
// remains the fastest option when the application controls the goroutines.
//
// # Static guarantees
//
// The package's in-memory contracts — the view-recycling rule above, the
// single-slab level store, the lock discipline of the concurrent
// wrappers, and the zero-allocation hot query paths — are enforced at
// compile time by the project linter, cmd/reqlint, a go/analysis
// multichecker run in CI over the whole repository. Code carries the
// contracts as annotations:
//
//   - //req:noalloc on a function asserts it allocates nothing; the
//     noalloc analyzer rejects make/new, escaping composite literals,
//     growing append (waivable per line with //req:allocok), interface
//     conversions, escaping closures, and calls to unannotated functions.
//   - // +req:guardedBy(mu) on a struct field makes the locked analyzer
//     prove every access holds mu (exclusively for writes);
//     // +req:locksRequired, +req:locksAcquired, +req:locksReleased and
//     +req:callsWithLock describe lock handoff between functions.
//   - //req:viewpass marks the rare helper allowed to return a *View.
//
// The slabalias analyzer needs no annotations: inside internal/core it
// proves that level-buffer windows are only appended to under an
// established capacity bound, that slab-derived slices are not retained
// across slab growth, and that scratch buffers never alias the slab.
// Run `go run ./cmd/reqlint ./...` locally; see the README's "Static
// guarantees" section for details.
//
// # API change in PR 4: Snapshot unification
//
// Snapshot() used to return three different types — Sharded[T].Snapshot a
// *mutable* *Sketch[T] deep clone, ConcurrentFloat64.Snapshot a
// (*Float64, error) clone, and Float64/Uint64 none at all. All containers
// now return the immutable *Snapshot[T] (*SnapshotFloat64 /
// *SnapshotUint64 for the concrete types). Migration: code that only
// queried the old snapshot works unchanged apart from the dropped error
// return; code that mutated it (Update/Merge on the clone) should either
// serialize full sketch state (MarshalBinary + DecodeFloat64/DecodeUint64)
// or keep its own plain sketch and Merge into it. Sharded snapshots are
// now free between writes — the published epoch snapshot is shared, not
// cloned per call.
package req
