package req

import (
	"sync"
)

// ConcurrentFloat64 is a mutex-guarded Float64 sketch, safe for concurrent
// use by multiple goroutines. Updates take an exclusive lock; queries take
// a read lock but may still pay the one-time sorted-view construction under
// contention-free semantics (the underlying view cache is rebuilt lazily
// under the write lock via Freeze).
//
// For write-heavy pipelines, sharding one plain sketch per goroutine and
// merging at read time is usually faster than sharing one sketch; this
// wrapper exists for the simple cases. See examples/distributed for the
// sharded pattern.
type ConcurrentFloat64 struct {
	mu sync.RWMutex
	s  *Float64
}

// NewConcurrentFloat64 returns a thread-safe float64 sketch.
func NewConcurrentFloat64(opts ...Option) (*ConcurrentFloat64, error) {
	s, err := NewFloat64(opts...)
	if err != nil {
		return nil, err
	}
	return &ConcurrentFloat64{s: s}, nil
}

// Update inserts one value.
func (c *ConcurrentFloat64) Update(v float64) {
	c.mu.Lock()
	c.s.Update(v)
	c.mu.Unlock()
}

// UpdateAll inserts every value of the slice under one lock acquisition.
func (c *ConcurrentFloat64) UpdateAll(vs []float64) {
	c.mu.Lock()
	c.s.UpdateAll(vs)
	c.mu.Unlock()
}

// Count returns the number of values summarised.
func (c *ConcurrentFloat64) Count() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Count()
}

// Rank returns the estimated inclusive rank of y.
//
// Rank scans the buffers directly (it does not build the cached sorted
// view), so a read lock suffices.
func (c *ConcurrentFloat64) Rank(y float64) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Rank(y)
}

// Quantile returns the item at normalized rank phi. It takes the write
// lock because the first quantile query after an update materialises the
// cached sorted view.
func (c *ConcurrentFloat64) Quantile(phi float64) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Quantile(phi)
}

// Quantiles returns the items at each normalized rank.
func (c *ConcurrentFloat64) Quantiles(phis []float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Quantiles(phis)
}

// Min returns the exact minimum. ok is false when empty.
func (c *ConcurrentFloat64) Min() (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Min()
}

// Max returns the exact maximum. ok is false when empty.
func (c *ConcurrentFloat64) Max() (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Max()
}

// ItemsRetained returns the storage footprint in items.
func (c *ConcurrentFloat64) ItemsRetained() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ItemsRetained()
}

// Merge absorbs a plain sketch into the concurrent one.
func (c *ConcurrentFloat64) Merge(other *Float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Merge(other)
}

// MarshalBinary serializes the wrapped sketch.
func (c *ConcurrentFloat64) MarshalBinary() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.MarshalBinary()
}

// Snapshot returns an independent plain copy of the current state, useful
// for lock-free querying of a frozen view.
func (c *ConcurrentFloat64) Snapshot() (*Float64, error) {
	blob, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return DecodeFloat64(blob)
}
