package req

import (
	"iter"
	"sync"
)

// ConcurrentFloat64 is a mutex-guarded Float64 sketch, safe for concurrent
// use by multiple goroutines. Updates take an exclusive lock. Queries take
// only the shared (read) lock while the sketch is frozen (its cached
// sorted view is materialized); the first query after a write re-freezes
// the view and answers under one exclusive acquisition, so queries always
// terminate even under a sustained write stream, and once frozen any
// number of queries proceed in parallel without serializing each other.
//
// For write-heavy pipelines the single mutex is the bottleneck; use Sharded
// (or ShardedFloat64), which stripes writers across per-shard sketches and
// merges at read time. This wrapper remains the right choice when updates
// are rare or a single consistent sketch instance is required.
type ConcurrentFloat64 struct {
	mu sync.RWMutex
	// +req:guardedBy(mu)
	s *Float64
}

// NewConcurrentFloat64 returns a thread-safe float64 sketch.
func NewConcurrentFloat64(opts ...Option) (*ConcurrentFloat64, error) {
	s, err := NewFloat64(opts...)
	if err != nil {
		return nil, err
	}
	return &ConcurrentFloat64{s: s}, nil
}

// Update inserts one value.
func (c *ConcurrentFloat64) Update(v float64) {
	c.mu.Lock()
	c.s.Update(v)
	c.mu.Unlock()
}

// UpdateBatch inserts every value of the slice under one lock acquisition,
// through the batch ingest path (NaNs skipped). Batching is doubly valuable
// here: it amortizes both the sketch-internal bookkeeping and the mutex
// traffic other writers and readers contend on.
func (c *ConcurrentFloat64) UpdateBatch(vs []float64) {
	c.mu.Lock()
	c.s.UpdateBatch(vs)
	c.mu.Unlock()
}

// UpdateAll inserts every value of the slice under one lock acquisition.
// It is the batch ingest path; UpdateAll and UpdateBatch are synonyms.
func (c *ConcurrentFloat64) UpdateAll(vs []float64) {
	c.UpdateBatch(vs)
}

// Count returns the number of values summarised.
func (c *ConcurrentFloat64) Count() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Count()
}

// Empty reports whether the sketch has seen no values.
func (c *ConcurrentFloat64) Empty() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Empty()
}

// Rank returns the estimated inclusive rank of y.
//
// Rank scans the buffers directly (it does not build the cached sorted
// view), so a read lock suffices.
func (c *ConcurrentFloat64) Rank(y float64) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Rank(y)
}

// RankExclusive returns the estimated exclusive rank of y (#values < y).
// Like Rank it scans the buffers directly under the read lock.
func (c *ConcurrentFloat64) RankExclusive(y float64) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.RankExclusive(y)
}

// NormalizedRank returns Rank(y)/Count() in [0, 1], both read under one
// lock acquisition.
func (c *ConcurrentFloat64) NormalizedRank(y float64) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.NormalizedRank(y)
}

// frozenRead runs f against the wrapped sketch under the freeze discipline
// every sorted-view query shares: while the sketch is frozen (no write
// since the last sorted query) f runs under the shared read lock; otherwise
// the sketch is frozen and f run under a single exclusive acquisition, so
// queries always terminate even under a sustained write stream.
//
// +req:callsWithLock(mu)
func (c *ConcurrentFloat64) frozenRead(f func()) {
	c.mu.RLock()
	if c.s.Frozen() {
		f()
		c.mu.RUnlock()
		return
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Freeze()
	f()
}

// Quantile returns the item at normalized rank phi; see frozenRead for the
// locking discipline.
func (c *ConcurrentFloat64) Quantile(phi float64) (q float64, err error) {
	c.frozenRead(func() { q, err = c.s.Quantile(phi) })
	return q, err
}

// Quantiles returns the items at each normalized rank; see frozenRead for
// the locking discipline.
func (c *ConcurrentFloat64) Quantiles(phis []float64) (qs []float64, err error) {
	c.frozenRead(func() { qs, err = c.s.Quantiles(phis) })
	return qs, err
}

// QuantilesInto answers every normalized rank in phis, writing into dst
// (grown as needed); see frozenRead for the locking discipline. dst must
// not be shared with concurrent callers.
func (c *ConcurrentFloat64) QuantilesInto(dst []float64, phis []float64) (qs []float64, err error) {
	c.frozenRead(func() { qs, err = c.s.QuantilesInto(dst, phis) })
	return qs, err
}

// RankBatch answers every probe in ys with one galloping sweep over the
// frozen view, writing into dst (grown as needed) in probe order; see
// Sketch.RankBatch and frozenRead. dst must not be shared with concurrent
// callers.
func (c *ConcurrentFloat64) RankBatch(dst []uint64, ys []float64) (out []uint64) {
	c.frozenRead(func() { out = c.s.RankBatch(dst, ys) })
	return out
}

// NormalizedRankBatch is RankBatch normalized by Count(); same locking
// discipline.
func (c *ConcurrentFloat64) NormalizedRankBatch(dst []float64, ys []float64) (out []float64) {
	c.frozenRead(func() { out = c.s.NormalizedRankBatch(dst, ys) })
	return out
}

// CDF returns the estimated normalized ranks at each ascending split
// point; see frozenRead for the locking discipline.
func (c *ConcurrentFloat64) CDF(splits []float64) (out []float64, err error) {
	c.frozenRead(func() { out, err = c.s.CDF(splits) })
	return out, err
}

// CDFInto writes the estimated normalized rank at each ascending split
// point into dst (grown as needed); see frozenRead for the locking
// discipline. dst must not be shared with concurrent callers.
func (c *ConcurrentFloat64) CDFInto(dst []float64, splits []float64) (out []float64, err error) {
	c.frozenRead(func() { out, err = c.s.CDFInto(dst, splits) })
	return out, err
}

// PMF returns the estimated probability mass of each interval delimited by
// the ascending split points; see frozenRead for the locking discipline.
func (c *ConcurrentFloat64) PMF(splits []float64) (out []float64, err error) {
	c.frozenRead(func() { out, err = c.s.PMF(splits) })
	return out, err
}

// PMFInto writes the estimated probability mass of each interval delimited
// by the ascending split points into dst (grown as needed); see frozenRead
// for the locking discipline. dst must not be shared with concurrent
// callers.
func (c *ConcurrentFloat64) PMFInto(dst []float64, splits []float64) (out []float64, err error) {
	c.frozenRead(func() { out, err = c.s.PMFInto(dst, splits) })
	return out, err
}

// Min returns the exact minimum. ok is false when empty.
func (c *ConcurrentFloat64) Min() (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Min()
}

// Max returns the exact maximum. ok is false when empty.
func (c *ConcurrentFloat64) Max() (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Max()
}

// ItemsRetained returns the storage footprint in items.
func (c *ConcurrentFloat64) ItemsRetained() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ItemsRetained()
}

// Merge absorbs a plain sketch into the concurrent one.
func (c *ConcurrentFloat64) Merge(other *Float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Merge(other)
}

// MarshalBinary serializes the wrapped sketch. Serialization reads the
// state without modifying it, so the shared lock suffices.
func (c *ConcurrentFloat64) MarshalBinary() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.MarshalBinary()
}

// All iterates the weighted coreset — every retained value in ascending
// order with its weight — under the frozenRead locking discipline: the
// sketch's lock is held for the duration of the loop, so the yield body
// must not call back into this wrapper AT ALL. Even read methods deadlock:
// the loop holds the read lock, and a recursive RLock queues behind any
// writer already waiting for the exclusive lock. Use Snapshot().All() to
// iterate without holding the lock.
func (c *ConcurrentFloat64) All() iter.Seq2[float64, uint64] {
	return func(yield func(item float64, weight uint64) bool) {
		c.frozenRead(func() {
			for x, w := range c.s.All() {
				if !yield(x, w) {
					return
				}
			}
		})
	}
}

// Snapshot captures the current state as an immutable, concurrency-safe
// Snapshot answering exactly what the wrapped sketch would at capture time;
// queries on it never touch this wrapper's lock again. While the sketch is
// frozen with its rank index built (the steady query-heavy state), the
// capture is a pure O(retained) copy under the shared lock, so concurrent
// readers are not stalled; only the first capture after a write pays an
// exclusive acquisition to re-freeze.
//
// Before PR 4 this returned (*Float64, error) — a full mutable deep clone.
// Callers that need the mutable state (to keep ingesting or merge) should
// use MarshalBinary + DecodeFloat64 instead.
func (c *ConcurrentFloat64) Snapshot() *SnapshotFloat64 {
	c.mu.RLock()
	if c.s.core.FrozenIndexed() {
		// FreezeOwned on a frozen+indexed sketch mutates nothing: the view
		// and index are current, so it reduces to copying them out.
		f := c.s.core.FreezeOwned()
		c.mu.RUnlock()
		return &Snapshot[float64]{f: f}
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Snapshot[float64]{f: c.s.core.FreezeOwned()}
}
