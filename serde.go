package req

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"req/internal/core"
	"req/internal/schedule"
)

// Binary serialization for Float64 and Uint64 sketches. The format is
// self-describing and versioned; it captures the full sketch state
// including the random generator, so a restored sketch continues exactly
// where the original stopped. All integers are little-endian.
//
// Layout:
//
//	magic   [4]byte  "REQ1"
//	version uint8    (1)
//	itype   uint8    item type (0 float64, 1 uint64)
//	mode    uint8    core.Mode
//	sched   uint8    schedule.Kind
//	flags   uint8    bit0 HRA, bit1 PaperConstants, bit2 DetCoin, bit3 hasMinMax
//	eps     float64
//	delta   float64
//	khat    float64
//	fixedK  uint32
//	seed    uint64
//	n       uint64
//	bound   uint64
//	n0      uint64
//	min     item
//	max     item
//	rng     uint64 word, uint64 bits, uint8 nbits
//	stats   5×uint64, uint32 (compactions, special, growths, merges, coins, maxbuf)
//	levels  uint8 count, then per level: uint64 state, uint32 len, len×item
var (
	magic = [4]byte{'R', 'E', 'Q', '1'}

	// ErrCorrupt is returned when decoding fails structural validation.
	ErrCorrupt = errors.New("req: corrupt or truncated sketch encoding")
)

const formatVersion = 1

// Item type tags used in the encoding header.
const (
	itemFloat64 = 0
	itemUint64  = 1
)

// maxDecodedLevelItems caps per-level allocation while decoding untrusted
// bytes; no valid sketch in this format approaches it.
const maxDecodedLevelItems = 1 << 28

// itemCodec serializes one item type. Implementations must be fixed-width.
type itemCodec[T any] struct {
	tag      byte
	put      func(out []byte, v T) []byte
	get      func(r *reader) (T, bool)
	validate func(v T) error
}

var float64Codec = itemCodec[float64]{
	tag: itemFloat64,
	put: func(out []byte, v float64) []byte {
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	},
	get: func(r *reader) (float64, bool) {
		v, ok := r.u64()
		return math.Float64frombits(v), ok
	},
	validate: func(v float64) error {
		if math.IsNaN(v) {
			return errors.New("NaN item")
		}
		return nil
	},
}

var uint64Codec = itemCodec[uint64]{
	tag: itemUint64,
	put: func(out []byte, v uint64) []byte {
		return binary.LittleEndian.AppendUint64(out, v)
	},
	get: func(r *reader) (uint64, bool) {
		return r.u64()
	},
	validate: func(uint64) error { return nil },
}

// marshalSnapshot encodes a snapshot under the given codec.
func marshalSnapshot[T any](snap core.Snapshot[T], codec itemCodec[T]) ([]byte, error) {
	size := 4 + 2 + 4 + 8*3 + 4 + 8*4 + 8*2 + (8 + 8 + 1) + (8*5 + 4) + 1
	for _, lv := range snap.Levels {
		size += 8 + 4 + 8*len(lv.Items)
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = append(out, formatVersion, codec.tag, byte(snap.Config.Mode), byte(snap.Config.Schedule))
	var flags byte
	if snap.Config.HRA {
		flags |= 1
	}
	if snap.Config.PaperConstants {
		flags |= 2
	}
	if snap.Config.DetCoin {
		flags |= 4
	}
	if snap.HasMinMax {
		flags |= 8
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(snap.Config.Eps))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(snap.Config.Delta))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(snap.Config.KHat))
	out = binary.LittleEndian.AppendUint32(out, uint32(snap.Config.K))
	out = binary.LittleEndian.AppendUint64(out, snap.Config.Seed)
	out = binary.LittleEndian.AppendUint64(out, snap.N)
	out = binary.LittleEndian.AppendUint64(out, snap.Bound)
	out = binary.LittleEndian.AppendUint64(out, snap.Config.N0)
	out = codec.put(out, snap.Min)
	out = codec.put(out, snap.Max)
	out = binary.LittleEndian.AppendUint64(out, snap.RNG.Word)
	out = binary.LittleEndian.AppendUint64(out, snap.RNG.Bits)
	out = append(out, snap.RNG.NBits)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.Compactions)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.SpecialCompactions)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.Growths)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.Merges)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.CoinFlips)
	out = binary.LittleEndian.AppendUint32(out, uint32(snap.Stats.MaxBufferLen))
	if len(snap.Levels) > 255 {
		return nil, fmt.Errorf("req: %d levels cannot be encoded", len(snap.Levels))
	}
	out = append(out, byte(len(snap.Levels)))
	for _, lv := range snap.Levels {
		out = binary.LittleEndian.AppendUint64(out, lv.State)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(lv.Items)))
		for _, v := range lv.Items {
			out = codec.put(out, v)
		}
	}
	return out, nil
}

// unmarshalSnapshot decodes bytes produced by marshalSnapshot. It never
// panics on corrupt input.
func unmarshalSnapshot[T any](data []byte, codec itemCodec[T]) (core.Snapshot[T], error) {
	var snap core.Snapshot[T]
	r := reader{buf: data}
	var m [4]byte
	if !r.bytes(m[:]) || m != magic {
		return snap, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version, ok := r.u8()
	if !ok || version != formatVersion {
		return snap, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	itype, ok := r.u8()
	if !ok || itype != codec.tag {
		return snap, fmt.Errorf("%w: item type %d does not match sketch type", ErrCorrupt, itype)
	}
	mode, ok1 := r.u8()
	sched, ok2 := r.u8()
	flags, ok3 := r.u8()
	if !ok1 || !ok2 || !ok3 {
		return snap, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	snap.Config.Mode = core.Mode(mode)
	snap.Config.Schedule = schedule.Kind(sched)
	snap.Config.HRA = flags&1 != 0
	snap.Config.PaperConstants = flags&2 != 0
	snap.Config.DetCoin = flags&4 != 0
	snap.HasMinMax = flags&8 != 0

	okAll := true
	getF := func() float64 {
		v, ok := r.u64()
		okAll = okAll && ok
		return math.Float64frombits(v)
	}
	getU64 := func() uint64 {
		v, ok := r.u64()
		okAll = okAll && ok
		return v
	}
	getU32 := func() uint32 {
		v, ok := r.u32()
		okAll = okAll && ok
		return v
	}
	getItem := func() T {
		v, ok := codec.get(&r)
		okAll = okAll && ok
		return v
	}

	snap.Config.Eps = getF()
	snap.Config.Delta = getF()
	snap.Config.KHat = getF()
	snap.Config.K = int(getU32())
	snap.Config.Seed = getU64()
	snap.N = getU64()
	snap.Bound = getU64()
	snap.Config.N0 = getU64()
	snap.Min = getItem()
	snap.Max = getItem()
	snap.RNG.Word = getU64()
	snap.RNG.Bits = getU64()
	nbits, ok := r.u8()
	okAll = okAll && ok
	snap.RNG.NBits = nbits
	snap.Stats.Compactions = getU64()
	snap.Stats.SpecialCompactions = getU64()
	snap.Stats.Growths = getU64()
	snap.Stats.Merges = getU64()
	snap.Stats.CoinFlips = getU64()
	snap.Stats.MaxBufferLen = int(getU32())
	if !okAll {
		return snap, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	numLevels, ok := r.u8()
	if !ok || numLevels == 0 {
		return snap, fmt.Errorf("%w: missing levels", ErrCorrupt)
	}
	snap.Levels = make([]core.LevelSnapshot[T], numLevels)
	for h := range snap.Levels {
		state, ok1 := r.u64()
		count, ok2 := r.u32()
		if !ok1 || !ok2 || int(count) > maxDecodedLevelItems {
			return snap, fmt.Errorf("%w: level %d header", ErrCorrupt, h)
		}
		if r.remaining() < int(count)*8 {
			return snap, fmt.Errorf("%w: level %d items truncated", ErrCorrupt, h)
		}
		items := make([]T, count)
		for i := range items {
			items[i], _ = codec.get(&r)
			if err := codec.validate(items[i]); err != nil {
				return snap, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
		snap.Levels[h] = core.LevelSnapshot[T]{State: state, Items: items}
	}
	if r.remaining() != 0 {
		return snap, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	return snap, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Float64) MarshalBinary() ([]byte, error) {
	return marshalSnapshot(s.core.Snapshot(), float64Codec)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state. Corrupt input returns ErrCorrupt (wrapped with detail);
// it never panics.
func (s *Float64) UnmarshalBinary(data []byte) error {
	snap, err := unmarshalSnapshot(data, float64Codec)
	if err != nil {
		return err
	}
	c, err := core.FromSnapshot(func(a, b float64) bool { return a < b }, snap)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Sketch = Sketch[float64]{core: c}
	return nil
}

// DecodeFloat64 allocates and decodes a sketch from its binary encoding.
func DecodeFloat64(data []byte) (*Float64, error) {
	var s Float64
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &s, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Uint64) MarshalBinary() ([]byte, error) {
	return marshalSnapshot(s.core.Snapshot(), uint64Codec)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; see
// Float64.UnmarshalBinary.
func (s *Uint64) UnmarshalBinary(data []byte) error {
	snap, err := unmarshalSnapshot(data, uint64Codec)
	if err != nil {
		return err
	}
	c, err := core.FromSnapshot(func(a, b uint64) bool { return a < b }, snap)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Sketch = Sketch[uint64]{core: c}
	return nil
}

// DecodeUint64 allocates and decodes a sketch from its binary encoding.
func DecodeUint64(data []byte) (*Uint64, error) {
	var s Uint64
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &s, nil
}

// reader is a bounds-checked cursor over the encoded bytes.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) bytes(dst []byte) bool {
	if r.remaining() < len(dst) {
		return false
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
	return true
}

func (r *reader) u8() (byte, bool) {
	if r.remaining() < 1 {
		return 0, false
	}
	v := r.buf[r.off]
	r.off++
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.remaining() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.remaining() < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, true
}
