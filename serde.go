package req

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"req/internal/core"
	"req/internal/schedule"
)

// Binary serialization for Float64 and Uint64 sketches and snapshots. The
// format is self-describing and versioned, with two record kinds sharing
// one header (flag bit4 distinguishes them):
//
//   - a FULL SKETCH record captures complete sketch state including the
//     random generator, so a restored sketch continues exactly where the
//     original stopped (MarshalBinary / DecodeFloat64 / DecodeUint64);
//   - a SNAPSHOT record captures only the queryable coreset — items,
//     weights, min/max and the config header — the query-only state a read
//     replica needs, decoding straight into an immutable indexed reader
//     (Snapshot.MarshalBinary / UnmarshalSnapshotFloat64 /
//     UnmarshalSnapshotUint64).
//
// Decoders reject the other kind's records with ErrCorrupt rather than
// misreading them. All integers are little-endian.
//
// Common header:
//
//	magic   [4]byte  "REQ1"
//	version uint8    (1)
//	itype   uint8    item type (0 float64, 1 uint64)
//	mode    uint8    core.Mode
//	sched   uint8    schedule.Kind
//	flags   uint8    bit0 HRA, bit1 PaperConstants, bit2 DetCoin,
//	                 bit3 hasMinMax, bit4 snapshot record
//	eps     float64
//	delta   float64
//	khat    float64
//	fixedK  uint32
//	seed    uint64
//	n       uint64
//
// Full sketch records continue:
//
//	bound   uint64
//	n0      uint64
//	min     item
//	max     item
//	rng     uint64 word, uint64 bits, uint8 nbits
//	stats   5×uint64, uint32 (compactions, special, growths, merges, coins, maxbuf)
//	levels  uint8 count, then per level: uint64 state, uint32 len, len×item
//
// Snapshot records continue:
//
//	n0      uint64
//	min     item
//	max     item
//	size    uint32   number of coreset entries
//	items   size×item     (ascending)
//	weights size×uvarint  (per-item weights, summing to n; weights are
//	                       small powers of two, so most take one byte)
var (
	magic = [4]byte{'R', 'E', 'Q', '1'}

	// ErrCorrupt is returned when decoding fails structural validation.
	ErrCorrupt = errors.New("req: corrupt or truncated sketch encoding")
)

const formatVersion = 1

// flagSnapshotRecord marks a snapshot (coreset-only) record in the flags
// byte; full sketch records keep it clear.
const flagSnapshotRecord = 16

// Item type tags used in the encoding header.
const (
	itemFloat64 = 0
	itemUint64  = 1
)

// maxDecodedLevelItems caps per-level allocation while decoding untrusted
// bytes; no valid sketch in this format approaches it.
const maxDecodedLevelItems = 1 << 28

// itemCodec serializes one item type. Implementations must be fixed-width
// (width bytes per item): the decoder sizes and skips level payloads
// arithmetically, which is what lets it lay all levels out in one
// contiguous slab before decoding a single item.
type itemCodec[T any] struct {
	tag   byte
	width int
	put   func(out []byte, v T) []byte
	get   func(r *reader) (T, bool)
	// putAll appends every item of vs — one sweep over contiguous memory
	// with the output grown once, no per-item append bookkeeping.
	putAll func(out []byte, vs []T) []byte
	// getAll decodes len(dst) items in one sweep; false on truncation.
	getAll   func(r *reader, dst []T) bool
	validate func(v T) error
}

var float64Codec = itemCodec[float64]{
	tag:   itemFloat64,
	width: 8,
	put: func(out []byte, v float64) []byte {
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	},
	get: func(r *reader) (float64, bool) {
		v, ok := r.u64()
		return math.Float64frombits(v), ok
	},
	putAll: func(out []byte, vs []float64) []byte {
		off := len(out)
		out = appendZeros(out, 8*len(vs))
		for _, v := range vs {
			binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
			off += 8
		}
		return out
	},
	getAll: func(r *reader, dst []float64) bool {
		if r.remaining() < 8*len(dst) {
			return false
		}
		b := r.buf[r.off:]
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		r.off += 8 * len(dst)
		return true
	},
	validate: func(v float64) error {
		if math.IsNaN(v) {
			return errors.New("NaN item")
		}
		return nil
	},
}

var uint64Codec = itemCodec[uint64]{
	tag:   itemUint64,
	width: 8,
	put: func(out []byte, v uint64) []byte {
		return binary.LittleEndian.AppendUint64(out, v)
	},
	get: func(r *reader) (uint64, bool) {
		return r.u64()
	},
	putAll: func(out []byte, vs []uint64) []byte {
		off := len(out)
		out = appendZeros(out, 8*len(vs))
		for _, v := range vs {
			binary.LittleEndian.PutUint64(out[off:], v)
			off += 8
		}
		return out
	},
	getAll: func(r *reader, dst []uint64) bool {
		if r.remaining() < 8*len(dst) {
			return false
		}
		b := r.buf[r.off:]
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
		r.off += 8 * len(dst)
		return true
	},
	validate: func(uint64) error { return nil },
}

// appendZeros extends out by n zero bytes. Callers presize their buffers,
// so the in-place reslice is the expected path.
func appendZeros(out []byte, n int) []byte {
	if cap(out)-len(out) >= n {
		return out[:len(out)+n]
	}
	return append(out, make([]byte, n)...)
}

// marshalSnapshot encodes a snapshot under the given codec.
func marshalSnapshot[T any](snap core.Snapshot[T], codec itemCodec[T]) ([]byte, error) {
	size := 4 + 2 + 4 + 8*3 + 4 + 8*4 + 8*2 + (8 + 8 + 1) + (8*5 + 4) + 1
	for _, lv := range snap.Levels {
		size += 8 + 4 + 8*len(lv.Items)
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = append(out, formatVersion, codec.tag, byte(snap.Config.Mode), byte(snap.Config.Schedule))
	var flags byte
	if snap.Config.HRA {
		flags |= 1
	}
	if snap.Config.PaperConstants {
		flags |= 2
	}
	if snap.Config.DetCoin {
		flags |= 4
	}
	if snap.HasMinMax {
		flags |= 8
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(snap.Config.Eps))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(snap.Config.Delta))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(snap.Config.KHat))
	out = binary.LittleEndian.AppendUint32(out, uint32(snap.Config.K))
	out = binary.LittleEndian.AppendUint64(out, snap.Config.Seed)
	out = binary.LittleEndian.AppendUint64(out, snap.N)
	out = binary.LittleEndian.AppendUint64(out, snap.Bound)
	out = binary.LittleEndian.AppendUint64(out, snap.Config.N0)
	out = codec.put(out, snap.Min)
	out = codec.put(out, snap.Max)
	out = binary.LittleEndian.AppendUint64(out, snap.RNG.Word)
	out = binary.LittleEndian.AppendUint64(out, snap.RNG.Bits)
	out = append(out, snap.RNG.NBits)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.Compactions)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.SpecialCompactions)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.Growths)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.Merges)
	out = binary.LittleEndian.AppendUint64(out, snap.Stats.CoinFlips)
	out = binary.LittleEndian.AppendUint32(out, uint32(snap.Stats.MaxBufferLen))
	if len(snap.Levels) > 255 {
		return nil, fmt.Errorf("req: %d levels cannot be encoded", len(snap.Levels))
	}
	out = append(out, byte(len(snap.Levels)))
	// The level payloads are windows of one contiguous capture slab
	// (core.Sketch.Snapshot lays them out back to back), so this loop is a
	// single forward sweep over contiguous memory: 12 header bytes per
	// level, then a bulk item write.
	for _, lv := range snap.Levels {
		out = binary.LittleEndian.AppendUint64(out, lv.State)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(lv.Items)))
		out = codec.putAll(out, lv.Items)
	}
	return out, nil
}

// decodeHeader parses the header fields shared by both record kinds —
// magic through the stream length n — validating magic, version, item
// type, and that the record is of the wanted kind (the other kind is
// rejected with ErrCorrupt and a pointer to the right decoder). The
// returned flags carry the hasMinMax bit (bit3).
func decodeHeader(r *reader, tag byte, wantSnapshot bool) (cfg core.Config, flags byte, n uint64, err error) {
	var m [4]byte
	if !r.bytes(m[:]) || m != magic {
		return cfg, 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version, ok := r.u8()
	if !ok || version != formatVersion {
		return cfg, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	itype, ok := r.u8()
	if !ok || itype != tag {
		return cfg, 0, 0, fmt.Errorf("%w: item type %d does not match the decoder's item type", ErrCorrupt, itype)
	}
	mode, ok1 := r.u8()
	sched, ok2 := r.u8()
	fl, ok3 := r.u8()
	if !ok1 || !ok2 || !ok3 {
		return cfg, 0, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if isSnap := fl&flagSnapshotRecord != 0; isSnap != wantSnapshot {
		if isSnap {
			return cfg, 0, 0, fmt.Errorf("%w: data encodes a query snapshot, not a full sketch; decode with UnmarshalSnapshotFloat64/UnmarshalSnapshotUint64", ErrCorrupt)
		}
		return cfg, 0, 0, fmt.Errorf("%w: data encodes a full sketch, not a query snapshot; decode with DecodeFloat64/DecodeUint64", ErrCorrupt)
	}
	cfg.Mode = core.Mode(mode)
	cfg.Schedule = schedule.Kind(sched)
	cfg.HRA = fl&1 != 0
	cfg.PaperConstants = fl&2 != 0
	cfg.DetCoin = fl&4 != 0
	okAll := true
	u64 := func() uint64 {
		v, ok := r.u64()
		okAll = okAll && ok
		return v
	}
	cfg.Eps = math.Float64frombits(u64())
	cfg.Delta = math.Float64frombits(u64())
	cfg.KHat = math.Float64frombits(u64())
	k, okK := r.u32()
	okAll = okAll && okK
	cfg.K = int(k)
	cfg.Seed = u64()
	n = u64()
	if !okAll {
		return cfg, 0, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	return cfg, fl, n, nil
}

// unmarshalSnapshot decodes bytes produced by marshalSnapshot. It never
// panics on corrupt input.
func unmarshalSnapshot[T any](data []byte, codec itemCodec[T]) (core.Snapshot[T], error) {
	var snap core.Snapshot[T]
	r := reader{buf: data}
	cfg, flags, n, err := decodeHeader(&r, codec.tag, false)
	if err != nil {
		return snap, err
	}
	snap.Config = cfg
	snap.N = n
	snap.HasMinMax = flags&8 != 0

	okAll := true
	getU64 := func() uint64 {
		v, ok := r.u64()
		okAll = okAll && ok
		return v
	}
	getItem := func() T {
		v, ok := codec.get(&r)
		okAll = okAll && ok
		return v
	}

	snap.Bound = getU64()
	snap.Config.N0 = getU64()
	snap.Min = getItem()
	snap.Max = getItem()
	snap.RNG.Word = getU64()
	snap.RNG.Bits = getU64()
	nbits, ok := r.u8()
	okAll = okAll && ok
	snap.RNG.NBits = nbits
	snap.Stats.Compactions = getU64()
	snap.Stats.SpecialCompactions = getU64()
	snap.Stats.Growths = getU64()
	snap.Stats.Merges = getU64()
	snap.Stats.CoinFlips = getU64()
	maxBuf, okMB := r.u32()
	okAll = okAll && okMB
	snap.Stats.MaxBufferLen = int(maxBuf)
	if !okAll {
		return snap, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	numLevels, ok := r.u8()
	if !ok || numLevels == 0 {
		return snap, fmt.Errorf("%w: missing levels", ErrCorrupt)
	}
	// Pass 1 — structure: walk the level headers, skipping the fixed-width
	// item payloads arithmetically. This sizes the whole level section
	// (rejecting truncation and trailing garbage) before a single item byte
	// is touched, so pass 2 can decode every level into ONE contiguous slab.
	type levelHeader struct {
		state uint64
		count int
	}
	headers := make([]levelHeader, numLevels)
	itemsStart := make([]int, numLevels)
	total := 0
	for h := range headers {
		state, ok1 := r.u64()
		count, ok2 := r.u32()
		if !ok1 || !ok2 || int(count) > maxDecodedLevelItems {
			return snap, fmt.Errorf("%w: level %d header", ErrCorrupt, h)
		}
		// int64 math: int(count)*width can overflow a 32-bit int at the cap.
		if int64(r.remaining()) < int64(count)*int64(codec.width) {
			return snap, fmt.Errorf("%w: level %d items truncated", ErrCorrupt, h)
		}
		headers[h] = levelHeader{state: state, count: int(count)}
		itemsStart[h] = r.off
		r.skip(int(count) * codec.width)
		total += int(count)
	}
	if r.remaining() != 0 {
		return snap, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	// Pass 2 — payload: bulk-decode each level's window of the slab. total
	// is bounded by len(data)/width (pass 1 walked every payload), so the
	// allocation cannot be baited beyond the input's own size.
	slab := make([]T, total)
	snap.Levels = make([]core.LevelSnapshot[T], numLevels)
	off := 0
	for h, hd := range headers {
		window := slab[off : off+hd.count : off+hd.count]
		r.off = itemsStart[h]
		if !codec.getAll(&r, window) {
			return snap, fmt.Errorf("%w: level %d items truncated", ErrCorrupt, h)
		}
		for i := range window {
			if err := codec.validate(window[i]); err != nil {
				return snap, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
		snap.Levels[h] = core.LevelSnapshot[T]{State: hd.state, Items: window}
		off += hd.count
	}
	return snap, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Float64) MarshalBinary() ([]byte, error) {
	return marshalSnapshot(s.core.Snapshot(), float64Codec)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state. Corrupt input returns ErrCorrupt (wrapped with detail);
// it never panics.
func (s *Float64) UnmarshalBinary(data []byte) error {
	snap, err := unmarshalSnapshot(data, float64Codec)
	if err != nil {
		return err
	}
	c, err := core.FromSnapshot(core.LessF64, snap)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Sketch = Sketch[float64]{core: c}
	return nil
}

// DecodeFloat64 allocates and decodes a sketch from its binary encoding.
func DecodeFloat64(data []byte) (*Float64, error) {
	var s Float64
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &s, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Uint64) MarshalBinary() ([]byte, error) {
	return marshalSnapshot(s.core.Snapshot(), uint64Codec)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; see
// Float64.UnmarshalBinary.
func (s *Uint64) UnmarshalBinary(data []byte) error {
	snap, err := unmarshalSnapshot(data, uint64Codec)
	if err != nil {
		return err
	}
	c, err := core.FromSnapshot(core.LessU64, snap)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Sketch = Sketch[uint64]{core: c}
	return nil
}

// DecodeUint64 allocates and decodes a sketch from its binary encoding.
func DecodeUint64(data []byte) (*Uint64, error) {
	var s Uint64
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &s, nil
}

// maxDecodedCoresetItems caps the coreset allocation while decoding
// untrusted snapshot bytes; no valid snapshot approaches it.
const maxDecodedCoresetItems = 1 << 28

// codecFor returns the item codec for T when T is one of the serializable
// item types (float64, uint64).
func codecFor[T any]() (itemCodec[T], bool) {
	var boxed any
	var zero T
	switch any(zero).(type) {
	case float64:
		boxed = float64Codec
	case uint64:
		boxed = uint64Codec
	default:
		return itemCodec[T]{}, false
	}
	return boxed.(itemCodec[T]), true
}

// MarshalBinary implements encoding.BinaryMarshaler: it encodes the
// snapshot's coreset (items, varint weights, min/max, config header) as a
// snapshot record of the package's versioned binary format — a query-only
// encoding decoded by UnmarshalSnapshotFloat64 / UnmarshalSnapshotUint64
// into an immutable indexed reader, carrying none of the sketch's mutable
// state. Only float64 and uint64 snapshots serialize; for other item
// types, export the coreset through All.
func (sn *Snapshot[T]) MarshalBinary() ([]byte, error) {
	codec, ok := codecFor[T]()
	if !ok {
		return nil, fmt.Errorf("req: snapshot serialization supports float64 and uint64 items only; range over All to export other types")
	}
	return marshalFrozen(sn.f, codec)
}

// appendSnapshotHeader appends the snapshot-record header — the common
// header (magic through n) followed by n0, min and max — shared by the
// in-memory snapshot encoding (marshalFrozen) and the persisted slab
// format's application header (persist.go). Keeping the two byte-identical
// means one decoder (decodeSnapshotPrefix) serves both.
func appendSnapshotHeader[T any](out []byte, f *core.Frozen[T], codec itemCodec[T]) []byte {
	cfg := f.Config()
	out = append(out, magic[:]...)
	out = append(out, formatVersion, codec.tag, byte(cfg.Mode), byte(cfg.Schedule))
	flags := byte(flagSnapshotRecord)
	if cfg.HRA {
		flags |= 1
	}
	if cfg.PaperConstants {
		flags |= 2
	}
	if cfg.DetCoin {
		flags |= 4
	}
	mn, hasMinMax := f.Min()
	mx, _ := f.Max()
	if hasMinMax {
		flags |= 8
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cfg.Eps))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cfg.Delta))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cfg.KHat))
	out = binary.LittleEndian.AppendUint32(out, uint32(cfg.K))
	out = binary.LittleEndian.AppendUint64(out, cfg.Seed)
	out = binary.LittleEndian.AppendUint64(out, f.Count())
	out = binary.LittleEndian.AppendUint64(out, cfg.N0)
	out = codec.put(out, mn)
	out = codec.put(out, mx)
	return out
}

// decodeSnapshotPrefix decodes what appendSnapshotHeader wrote: the common
// header plus n0/min/max, with min/max validated when present. The cursor
// is left at the first byte after the prefix.
func decodeSnapshotPrefix[T any](r *reader, codec itemCodec[T]) (cfg core.Config, hasMinMax bool, n uint64, mn, mx T, err error) {
	cfg, flags, n, err := decodeHeader(r, codec.tag, true)
	if err != nil {
		return cfg, false, 0, mn, mx, err
	}
	hasMinMax = flags&8 != 0
	okAll := true
	n0, okN0 := r.u64()
	okAll = okAll && okN0
	cfg.N0 = n0
	getItem := func() T {
		v, ok := codec.get(r)
		okAll = okAll && ok
		return v
	}
	mn = getItem()
	mx = getItem()
	if !okAll {
		return cfg, false, 0, mn, mx, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
	}
	if hasMinMax {
		if err := codec.validate(mn); err != nil {
			return cfg, false, 0, mn, mx, fmt.Errorf("%w: min: %v", ErrCorrupt, err)
		}
		if err := codec.validate(mx); err != nil {
			return cfg, false, 0, mn, mx, fmt.Errorf("%w: max: %v", ErrCorrupt, err)
		}
	}
	return cfg, hasMinMax, n, mn, mx, nil
}

// appendFrozenRecord appends a frozen coreset's snapshot record — header,
// item count, items, varint weights — to out. It is the append-style core
// of marshalFrozen, shared with the registry encoding, which streams many
// per-key records into one growing buffer.
func appendFrozenRecord[T any](out []byte, f *core.Frozen[T], codec itemCodec[T]) []byte {
	items := f.Items()
	out = appendSnapshotHeader(out, f, codec)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(items)))
	out = codec.putAll(out, items)
	for i := range items {
		out = binary.AppendUvarint(out, f.Weight(i))
	}
	return out
}

// frozenRecordCap upper-bounds the encoded size of a frozen coreset's
// snapshot record (weights are varints, at most 10 bytes each).
func frozenRecordCap(retained int) int {
	return 4 + 2 + 4 + 8*3 + 4 + 8*3 + 8*2 + 4 + 18*retained
}

// marshalFrozen encodes a frozen coreset as a snapshot record.
func marshalFrozen[T any](f *core.Frozen[T], codec itemCodec[T]) ([]byte, error) {
	return appendFrozenRecord(make([]byte, 0, frozenRecordCap(f.Size())), f, codec), nil
}

// unmarshalFrozen decodes a snapshot record into a frozen coreset. It
// never panics on corrupt input; every rejection is wrapped in ErrCorrupt.
func unmarshalFrozen[T any](data []byte, less func(a, b T) bool, codec itemCodec[T]) (*core.Frozen[T], error) {
	r := reader{buf: data}
	cfg, hasMinMax, n, mn, mx, err := decodeSnapshotPrefix(&r, codec)
	if err != nil {
		return nil, err
	}
	size, okSize := r.u32()
	if !okSize {
		return nil, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
	}
	// Items are fixed-width; weights are varints, so only a lower bound on
	// the remaining payload can be checked up front (one byte per weight).
	// The bound is computed in int64: int(size)*9 would overflow a 32-bit
	// int for attacker-chosen sizes and let a tiny record through to a
	// gigabyte allocation.
	if int(size) > maxDecodedCoresetItems || int64(r.remaining()) < int64(size)*9 {
		return nil, fmt.Errorf("%w: coreset size %d does not match payload", ErrCorrupt, size)
	}
	items := make([]T, size)
	if !codec.getAll(&r, items) {
		return nil, fmt.Errorf("%w: coreset items truncated", ErrCorrupt)
	}
	for i := range items {
		if err := codec.validate(items[i]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	weights := make([]uint64, size)
	for i := range weights {
		w, ok := r.uvarint()
		if !ok {
			return nil, fmt.Errorf("%w: weight %d truncated", ErrCorrupt, i)
		}
		weights[i] = w
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	f, err := core.FrozenFromCoreset(less, cfg, n, mn, mx, hasMinMax, items, weights)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return f, nil
}

// UnmarshalSnapshotFloat64 decodes a snapshot record produced by
// SnapshotFloat64.MarshalBinary into an immutable queryable snapshot.
// Corrupt input returns ErrCorrupt (wrapped with detail); it never panics.
func UnmarshalSnapshotFloat64(data []byte) (*SnapshotFloat64, error) {
	f, err := unmarshalFrozen(data, core.LessF64, float64Codec)
	if err != nil {
		return nil, err
	}
	return &Snapshot[float64]{f: f}, nil
}

// UnmarshalSnapshotUint64 decodes a snapshot record produced by
// SnapshotUint64.MarshalBinary; see UnmarshalSnapshotFloat64.
func UnmarshalSnapshotUint64(data []byte) (*SnapshotUint64, error) {
	f, err := unmarshalFrozen(data, core.LessU64, uint64Codec)
	if err != nil {
		return nil, err
	}
	return &Snapshot[uint64]{f: f}, nil
}

// reader is a bounds-checked cursor over the encoded bytes.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// skip advances the cursor n bytes; the caller has already checked bounds.
func (r *reader) skip(n int) { r.off += n }

func (r *reader) bytes(dst []byte) bool {
	if r.remaining() < len(dst) {
		return false
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
	return true
}

func (r *reader) u8() (byte, bool) {
	if r.remaining() < 1 {
		return 0, false
	}
	v := r.buf[r.off]
	r.off++
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.remaining() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.remaining() < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}
