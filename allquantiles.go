package req

import (
	"fmt"
	"math"
)

// AllQuantiles returns the option set that upgrades the per-item guarantee
// of Theorem 1 to the simultaneous all-quantiles guarantee of Corollary 1:
// with probability 1 − delta, EVERY rank query (hence every quantile) is
// within relative error eps at once.
//
// Per the corollary's proof, this runs the sketch at ε′ = ε/3 and
// δ′ = δ·ε / (3·log₂(ε·n)) — a union bound over the Θ(ε⁻¹·log(εn)) items of
// an offline-optimal relative-error cover of the stream. nHint is the
// anticipated stream length used to size the union bound; overshooting it
// is safe (the bound only tightens), undershooting weakens the simultaneous
// guarantee back toward per-item.
//
//	s, _ := req.NewFloat64(req.AllQuantiles(0.01, 0.05, 1e9)...)
func AllQuantiles(eps, delta float64, nHint uint64) []Option {
	epsPrime := eps / 3
	// Cover size Θ(ε⁻¹·log₂(εn)); the constant 1 suffices because the
	// cover of Appendix A stores ℓ = ε⁻¹ items per doubling of rank.
	logTerm := math.Log2(math.Max(2, eps*float64(nHint)))
	coverSize := math.Max(1, logTerm/epsPrime)
	deltaPrime := delta / coverSize
	if deltaPrime <= 0 || math.IsNaN(deltaPrime) {
		deltaPrime = 1e-16
	}
	// Delta only changes the space constant; clamp it to the supported
	// range rather than erroring on extreme cover sizes.
	if deltaPrime < 1e-300 {
		deltaPrime = 1e-300
	}
	return []Option{WithEpsilon(epsPrime), WithDelta(deltaPrime)}
}

// RankBounds returns a confidence interval for the true rank of y derived
// from the sketch's ε: [R̂/(1+ε), R̂/(1−ε)], each end clamped to [0, n].
// The interval covers the true rank with probability 1 − δ (per queried
// item; combine with AllQuantiles for simultaneous coverage).
func (s *Sketch[T]) RankBounds(y T) (lo, hi uint64) {
	est := float64(s.Rank(y))
	eps := s.core.Config().Eps
	lo = uint64(math.Floor(est / (1 + eps)))
	if eps < 1 {
		hi = uint64(math.Ceil(est / (1 - eps)))
	} else {
		hi = s.Count()
	}
	if hi > s.Count() {
		hi = s.Count()
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Epsilon returns the sketch's configured relative-error target.
func (s *Sketch[T]) Epsilon() float64 { return s.core.Config().Eps }

// Delta returns the sketch's configured failure probability.
func (s *Sketch[T]) Delta() float64 { return s.core.Config().Delta }

// validateAllQuantilesArgs is used by tests to surface argument errors the
// variadic helper would otherwise defer to New.
func validateAllQuantilesArgs(eps, delta float64) error {
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("req: all-quantiles epsilon %v out of (0, 1)", eps)
	}
	if delta <= 0 || delta > 0.5 {
		return fmt.Errorf("req: all-quantiles delta %v out of (0, 0.5]", delta)
	}
	return nil
}
