package req

import (
	"fmt"
	"time"

	"req/internal/core"
)

// An Option configures a sketch at construction time.
type Option func(*core.Config) error

// WithEpsilon sets the multiplicative error target ε ∈ (0, 1). The default
// is 0.01. Smaller ε means a larger sketch: space grows linearly in 1/ε.
func WithEpsilon(eps float64) Option {
	return func(c *core.Config) error {
		if eps <= 0 || eps >= 1 {
			return fmt.Errorf("req: epsilon %v out of range (0, 1)", eps)
		}
		c.Eps = eps
		return nil
	}
}

// WithDelta sets the per-item failure probability δ ∈ (0, 0.5]. The default
// is 0.01. Space grows with √log(1/δ) (or log log(1/δ) in Theorem-2 mode).
func WithDelta(delta float64) Option {
	return func(c *core.Config) error {
		if delta <= 0 || delta > 0.5 {
			return fmt.Errorf("req: delta %v out of range (0, 0.5]", delta)
		}
		c.Delta = delta
		return nil
	}
}

// WithK selects the fixed-section-size mode with the given k (even, ≥ 4),
// matching the parameterisation of Apache DataSketches' ReqSketch. Error
// decreases as k grows; space is ≈ 2k·log₂(n/k) items per level. WithK is
// mutually exclusive with WithEpsilon/WithDelta-derived sizing.
func WithK(k int) Option {
	return func(c *core.Config) error {
		if k < 4 || k%2 != 0 {
			return fmt.Errorf("req: k = %d must be an even integer ≥ 4", k)
		}
		c.Mode = core.ModeFixedK
		c.K = k
		return nil
	}
}

// WithTheorem2Mode selects the Appendix C parameterisation: section size
// k ∝ ε⁻¹·log₂log₂(1/δ), giving space O(ε⁻¹·log²(εn)·log log(1/δ)). It is
// preferable when δ is extremely small (say, below (εn)^−1); with δ small
// enough the guarantee holds for every coin outcome, recovering the
// deterministic O(ε⁻¹·log³(εn)) bound.
func WithTheorem2Mode() Option {
	return func(c *core.Config) error {
		c.Mode = core.ModeTheorem2
		return nil
	}
}

// WithKnownN declares an upper bound on the total stream length, sizing the
// sketch once instead of growing through the N-squaring schedule of
// Section 5. Exceeding the bound is safe (growth resumes) but forfeits the
// pre-sizing benefit. It pairs well with UpdateBatch: with the bound known
// up front no growth can land mid-batch, so batch and per-item ingest are
// bit-for-bit identical.
func WithKnownN(n uint64) Option {
	return func(c *core.Config) error {
		if n == 0 {
			return fmt.Errorf("req: known n must be positive")
		}
		c.N0 = core.CeilPow2(n)
		return nil
	}
}

// WithHighRankAccuracy makes the relative-error guarantee apply to
// n − R(y), i.e., to the largest items: the sketch stores the top of the
// distribution exactly and degrades gracefully toward the bottom. This is
// the mode for latency-tail monitoring (p99, p99.9, …), per the reversed-
// comparator observation in Section 1 of the paper.
func WithHighRankAccuracy() Option {
	return func(c *core.Config) error {
		c.HRA = true
		return nil
	}
}

// WithShards fixes the shard count of a Sharded sketch (it is rounded up
// to a power of two internally). The default, also selected by n = 0, is
// automatic GOMAXPROCS-based scaling. More shards reduce writer contention
// at the cost of a slightly larger merged read snapshot. Plain (unsharded)
// sketches ignore this option.
func WithShards(n int) Option {
	return func(c *core.Config) error {
		if n < 0 {
			return fmt.Errorf("req: shard count %d must be non-negative", n)
		}
		c.Shards = n
		return nil
	}
}

// WithTTL sets a registry's idle time-to-live: a key untouched (no update,
// no query) for at least d reads as absent and its storage is reclaimed —
// lazily on access, under capacity pressure, or by an explicit ExpireNow
// sweep. d must be positive. Plain (unkeyed) sketches ignore this option.
func WithTTL(d time.Duration) Option {
	return func(c *core.Config) error {
		if d <= 0 {
			return fmt.Errorf("req: TTL %v must be positive", d)
		}
		c.TTLNanos = int64(d)
		return nil
	}
}

// WithMaxEntries caps a registry's resident key count at n (split evenly
// across shards: each shard enforces ceil(n/shards)). A creation over a
// full shard evicts one resident key chosen by a clock-hand second-chance
// sweep — TTL-expired keys first, least-recently-touched next. Plain
// (unkeyed) sketches ignore this option.
func WithMaxEntries(n int) Option {
	return func(c *core.Config) error {
		if n <= 0 {
			return fmt.Errorf("req: max entries %d must be positive", n)
		}
		c.MaxEntries = n
		return nil
	}
}

// WithWindow shapes a WindowedRegistry: per key, a ring of slots sketch
// slots each covering slot duration of stream time, so queries answer over
// the trailing slots·slot window (the current partial slot plus slots−1
// sealed ones). More slots means finer window granularity at
// proportionally more memory per key. Slots must be ≥ 2; slot must be
// positive. Registry and plain sketches reject/ignore this option
// respectively; NewWindowedRegistry requires it.
func WithWindow(slots int, slot time.Duration) Option {
	return func(c *core.Config) error {
		if slots < 2 {
			return fmt.Errorf("req: window slot count %d must be ≥ 2", slots)
		}
		if slot <= 0 {
			return fmt.Errorf("req: window slot duration %v must be positive", slot)
		}
		c.WindowSlots = slots
		c.SlotNanos = int64(slot)
		return nil
	}
}

// WithClock injects the registry's nanosecond clock, read on every keyed
// operation for TTL bookkeeping and window-slot rotation. The default is
// the wall clock (time.Now().UnixNano()); tests inject synthetic time to
// drive eviction and rotation deterministically. now must be monotonic
// non-decreasing for eviction semantics to be meaningful. Plain (unkeyed)
// sketches ignore this option.
func WithClock(now func() int64) Option {
	return func(c *core.Config) error {
		if now == nil {
			return fmt.Errorf("req: nil clock")
		}
		c.Now = now
		return nil
	}
}

// WithSeed fixes the seed of the sketch's internal random source, making
// runs bit-for-bit reproducible. Two sketches with the same seed, options,
// and input are identical.
func WithSeed(seed uint64) Option {
	return func(c *core.Config) error {
		c.Seed = seed
		return nil
	}
}

// WithPaperConstants sizes the sketch with the exact constants of the
// paper's equations (15), (16) and N₀ = 2⁸·k̂ rather than the library's
// practical constants. The asymptotics are identical; the paper constants
// exist for proof convenience and make the sketch several times larger.
// Used by the reproduction experiments.
func WithPaperConstants() Option {
	return func(c *core.Config) error {
		c.PaperConstants = true
		return nil
	}
}
