package req

import (
	"math"
	"testing"

	"req/internal/rng"
)

func TestAllQuantilesOptionsConstruct(t *testing.T) {
	s, err := NewFloat64(AllQuantiles(0.05, 0.05, 1<<20)...)
	if err != nil {
		t.Fatal(err)
	}
	// ε′ = ε/3.
	if math.Abs(s.Epsilon()-0.05/3) > 1e-12 {
		t.Fatalf("eps' = %v", s.Epsilon())
	}
	if s.Delta() >= 0.05 {
		t.Fatalf("delta' = %v not reduced", s.Delta())
	}
}

func TestAllQuantilesExtremeArgsStillConstruct(t *testing.T) {
	// Gigantic nHint and tiny delta must clamp, not error.
	if _, err := NewFloat64(AllQuantiles(0.01, 1e-6, math.MaxUint64)...); err != nil {
		t.Fatal(err)
	}
}

func TestAllQuantilesSimultaneousGuarantee(t *testing.T) {
	// With the Corollary 1 sizing, EVERY power-of-two rank must be within
	// the original ε simultaneously, across several seeds.
	const n = 1 << 16
	const eps = 0.1
	for seed := uint64(0); seed < 6; seed++ {
		opts := append(AllQuantiles(eps, 0.05, n), WithSeed(seed))
		s, err := NewFloat64(opts...)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed + 100)
		for _, v := range r.Perm(n) {
			s.Update(float64(v))
		}
		for rank := 1; rank <= n; rank *= 2 {
			est := float64(s.Rank(float64(rank - 1)))
			rel := math.Abs(est-float64(rank)) / float64(rank)
			if rel > eps {
				t.Fatalf("seed %d rank %d: rel %.4f > ε", seed, rank, rel)
			}
		}
	}
}

func TestValidateAllQuantilesArgs(t *testing.T) {
	if err := validateAllQuantilesArgs(0.1, 0.1); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ e, d float64 }{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 0.7}} {
		if err := validateAllQuantilesArgs(c.e, c.d); err == nil {
			t.Errorf("args (%v, %v) accepted", c.e, c.d)
		}
	}
}

func TestRankBounds(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.1), WithSeed(7))
	const n = 1 << 16
	s.UpdateAll(permStream(n, 8))
	for rank := 64; rank <= n; rank *= 4 {
		lo, hi := s.Sketch.RankBounds(float64(rank - 1))
		if lo > hi {
			t.Fatalf("bounds inverted at rank %d: [%d, %d]", rank, lo, hi)
		}
		if uint64(rank) < lo || uint64(rank) > hi {
			t.Errorf("true rank %d outside bounds [%d, %d]", rank, lo, hi)
		}
		if hi > s.Count() {
			t.Fatalf("upper bound %d exceeds n", hi)
		}
	}
}

func TestRankBoundsEmpty(t *testing.T) {
	s := mustFloat64(t)
	lo, hi := s.Sketch.RankBounds(5)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty bounds = [%d, %d]", lo, hi)
	}
}

func TestEpsilonDeltaAccessors(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.07), WithDelta(0.03))
	if s.Epsilon() != 0.07 || s.Delta() != 0.03 {
		t.Fatalf("accessors: %v, %v", s.Epsilon(), s.Delta())
	}
}
