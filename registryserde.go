package req

import (
	"encoding/binary"
	"fmt"
	"iter"

	"req/internal/core"
)

// Binary serialization for registries. A registry encodes as a keyed
// sequence of the package's snapshot records — each key's queryable
// coreset, exactly what SnapshotFloat64.MarshalBinary writes for a single
// sketch — under its own header, so a saved registry restores as a
// RegistrySnapshot whose per-key answers are bit-identical to the live
// registry's frozen answers at capture time. The encoding is query-only:
// like a snapshot record (and unlike a full sketch record) it carries no
// mutable sketch state, because a registry export is a fleet of read
// replicas, not a migration. All integers are little-endian.
//
// Layout:
//
//	magic    [4]byte  "RREG"
//	version  uint8    (1)
//	keyTag   uint8    key type (0 uint64, 1 string)
//	itemTag  uint8    item type (0 float64, 1 uint64)
//	flags    uint8    (reserved, 0)
//	keyCount uint64
//
// then keyCount times:
//
//	key      uint64 (keyTag 0) | uvarint length + bytes (keyTag 1)
//	recLen   uvarint
//	record   recLen bytes: one snapshot record (see serde.go)
//
// Decoders validate structurally and reject hostile or truncated input
// with ErrCorrupt; they never panic.
var registryMagic = [4]byte{'R', 'R', 'E', 'G'}

const registryFormatVersion = 1

// Key type tags used in the registry header.
const (
	keyUint64 = 0
	keyString = 1
)

// maxDecodedKeyLen caps one string key's length while decoding untrusted
// bytes; no sane tenant key approaches it.
const maxDecodedKeyLen = 1 << 20

// registryHeaderSize is the fixed prefix before the keyed records.
const registryHeaderSize = 4 + 4 + 8

// keyCodec serializes one registry key type.
type keyCodec[K comparable] struct {
	tag byte
	put func(out []byte, k K) []byte
	get func(r *reader) (K, bool)
}

var stringKeyCodec = keyCodec[string]{
	tag: keyString,
	put: func(out []byte, k string) []byte {
		out = binary.AppendUvarint(out, uint64(len(k)))
		return append(out, k...)
	},
	get: func(r *reader) (string, bool) {
		n, ok := r.uvarint()
		if !ok || n > maxDecodedKeyLen || uint64(r.remaining()) < n {
			return "", false
		}
		k := string(r.buf[r.off : r.off+int(n)])
		r.off += int(n)
		return k, true
	},
}

var uint64KeyCodec = keyCodec[uint64]{
	tag: keyUint64,
	put: func(out []byte, k uint64) []byte {
		return binary.LittleEndian.AppendUint64(out, k)
	},
	get: func(r *reader) (uint64, bool) {
		return r.u64()
	},
}

// appendRegistryHeader appends the fixed registry prefix with the given
// key count (encodeRegistry patches the count in after the walk).
func appendRegistryHeader(out []byte, keyTag, itemTag byte, keyCount uint64) []byte {
	out = append(out, registryMagic[:]...)
	out = append(out, registryFormatVersion, keyTag, itemTag, 0)
	return binary.LittleEndian.AppendUint64(out, keyCount)
}

// encodeRegistry walks the registry's resident keys (shard by shard, each
// shard consistent under its lock) and encodes every key's coreset as one
// snapshot record. The walk freezes each sketch in place and marshals it
// while the shard lock is held, so the record is an exact capture; keys
// updated on other shards during the walk land in whichever state the
// walk finds them.
func encodeRegistry[K comparable, T any](r *Registry[K, T], kc keyCodec[K], ic itemCodec[T]) []byte {
	out := appendRegistryHeader(make([]byte, 0, 1<<12), kc.tag, ic.tag, 0)
	var count uint64
	r.Visit(func(key K, s *Sketch[T]) bool {
		out = kc.put(out, key)
		f := s.core.FreezeShared()
		out = binary.AppendUvarint(out, uint64(frozenRecordLen(f, ic)))
		out = appendFrozenRecord(out, f, ic)
		count++
		return true
	})
	binary.LittleEndian.PutUint64(out[8:], count)
	return out
}

// frozenRecordLen returns the exact encoded length of a frozen coreset's
// snapshot record: the fixed prefix (4 magic + 5 one-byte fields + 3
// float64 params + fixedK u32 + seed/n/n0 u64 + min/max + size u32) plus
// fixed-width items plus the varint weights.
func frozenRecordLen[T any](f *core.Frozen[T], ic itemCodec[T]) int {
	n := 65 + ic.width*2 + ic.width*f.Size()
	for i := 0; i < f.Size(); i++ {
		n += uvarintLen(f.Weight(i))
	}
	return n
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeRegistryHeader validates the fixed registry prefix.
func decodeRegistryHeader(r *reader, keyTag, itemTag byte) (keyCount uint64, err error) {
	var m [4]byte
	if !r.bytes(m[:]) || m != registryMagic {
		return 0, fmt.Errorf("%w: bad registry magic", ErrCorrupt)
	}
	version, ok := r.u8()
	if !ok || version != registryFormatVersion {
		return 0, fmt.Errorf("%w: unsupported registry version %d", ErrCorrupt, version)
	}
	kt, ok1 := r.u8()
	it, ok2 := r.u8()
	fl, ok3 := r.u8()
	if !ok1 || !ok2 || !ok3 {
		return 0, fmt.Errorf("%w: truncated registry header", ErrCorrupt)
	}
	if kt != keyTag {
		return 0, fmt.Errorf("%w: key type %d does not match the decoder's key type", ErrCorrupt, kt)
	}
	if it != itemTag {
		return 0, fmt.Errorf("%w: item type %d does not match the decoder's item type", ErrCorrupt, it)
	}
	if fl != 0 {
		return 0, fmt.Errorf("%w: unknown registry flags %#x", ErrCorrupt, fl)
	}
	keyCount, ok = r.u64()
	if !ok {
		return 0, fmt.Errorf("%w: truncated registry header", ErrCorrupt)
	}
	return keyCount, nil
}

// decodeRegistryRecords decodes keyCount keyed snapshot records from r.
func decodeRegistryRecords[K comparable, T any](
	r *reader, keyCount uint64,
	less func(a, b T) bool,
	kc keyCodec[K], ic itemCodec[T],
) (map[K]*Snapshot[T], error) {
	// Each key costs at least two bytes (key byte + record length), so a
	// keyCount beyond the remaining payload is structurally impossible —
	// reject before sizing anything by it.
	if keyCount > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: key count %d exceeds payload", ErrCorrupt, keyCount)
	}
	m := make(map[K]*Snapshot[T], keyCount)
	for i := uint64(0); i < keyCount; i++ {
		key, ok := kc.get(r)
		if !ok {
			return nil, fmt.Errorf("%w: key %d truncated", ErrCorrupt, i)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%w: duplicate key at record %d", ErrCorrupt, i)
		}
		recLen, ok := r.uvarint()
		if !ok || recLen > uint64(r.remaining()) {
			return nil, fmt.Errorf("%w: record %d length", ErrCorrupt, i)
		}
		f, err := unmarshalFrozen(r.buf[r.off:r.off+int(recLen)], less, ic)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		r.off += int(recLen)
		m[key] = &Snapshot[T]{f: f}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	return m, nil
}

// decodeRegistry decodes a full registry blob (header + records).
func decodeRegistry[K comparable, T any](
	data []byte,
	less func(a, b T) bool,
	kc keyCodec[K], ic itemCodec[T],
) (*RegistrySnapshot[K, T], error) {
	r := reader{buf: data}
	keyCount, err := decodeRegistryHeader(&r, kc.tag, ic.tag)
	if err != nil {
		return nil, err
	}
	m, err := decodeRegistryRecords(&r, keyCount, less, kc, ic)
	if err != nil {
		return nil, err
	}
	return &RegistrySnapshot[K, T]{m: m}, nil
}

// RegistrySnapshot is an immutable keyed collection of Snapshots: the
// decoded form of a serialized registry. Each key's snapshot answers
// exactly what the live registry's sketch answered at capture time; the
// collection as a whole is safe for any number of concurrent readers.
type RegistrySnapshot[K comparable, T any] struct {
	m   map[K]*Snapshot[T]
	gen uint64
}

// RegistrySnapshotFloat64 is the string-keyed float64 instantiation of
// RegistrySnapshot, as restored by UnmarshalRegistryFloat64 and
// OpenRegistryFloat64.
type RegistrySnapshotFloat64 = RegistrySnapshot[string, float64]

// RegistrySnapshotUint64 is the uint64-keyed instantiation of
// RegistrySnapshot, as restored by UnmarshalRegistryUint64 and
// OpenRegistryUint64.
type RegistrySnapshotUint64 = RegistrySnapshot[uint64, uint64]

// Get returns key's snapshot, or ok=false when the capture held no such
// key.
func (rs *RegistrySnapshot[K, T]) Get(key K) (*Snapshot[T], bool) {
	sn, ok := rs.m[key]
	return sn, ok
}

// Len returns the number of keys captured.
func (rs *RegistrySnapshot[K, T]) Len() int { return len(rs.m) }

// Generation returns the snapstore generation the collection was restored
// from (0 when decoded from raw bytes rather than a generation file).
func (rs *RegistrySnapshot[K, T]) Generation() uint64 { return rs.gen }

// All iterates every (key, snapshot) pair in unspecified order.
func (rs *RegistrySnapshot[K, T]) All() iter.Seq2[K, *Snapshot[T]] {
	return func(yield func(K, *Snapshot[T]) bool) {
		for k, sn := range rs.m {
			if !yield(k, sn) {
				return
			}
		}
	}
}

// String returns a short human-readable summary.
func (rs *RegistrySnapshot[K, T]) String() string {
	return fmt.Sprintf("req.RegistrySnapshot{keys=%d, gen=%d}", rs.Len(), rs.gen)
}

// MarshalBinary implements encoding.BinaryMarshaler: every resident key's
// coreset as a keyed snapshot record (see the package format comment
// above). The walk captures shard by shard under each shard's lock.
func (r *RegistryFloat64) MarshalBinary() ([]byte, error) {
	return encodeRegistry(&r.Registry, stringKeyCodec, float64Codec), nil
}

// UnmarshalRegistryFloat64 decodes bytes produced by
// RegistryFloat64.MarshalBinary into an immutable keyed snapshot
// collection. Corrupt input returns ErrCorrupt (wrapped with detail); it
// never panics.
func UnmarshalRegistryFloat64(data []byte) (*RegistrySnapshotFloat64, error) {
	return decodeRegistry(data, core.LessF64, stringKeyCodec, float64Codec)
}

// MarshalBinary implements encoding.BinaryMarshaler; see
// RegistryFloat64.MarshalBinary.
func (r *RegistryUint64) MarshalBinary() ([]byte, error) {
	return encodeRegistry(&r.Registry, uint64KeyCodec, uint64Codec), nil
}

// UnmarshalRegistryUint64 decodes bytes produced by
// RegistryUint64.MarshalBinary; see UnmarshalRegistryFloat64.
func UnmarshalRegistryUint64(data []byte) (*RegistrySnapshotUint64, error) {
	return decodeRegistry(data, core.LessU64, uint64KeyCodec, uint64Codec)
}
