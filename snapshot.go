package req

import (
	"fmt"
	"iter"

	"req/internal/core"
)

// Snapshot is an immutable, concurrency-safe point-in-time reader over a
// sketch's weighted coreset: the sorted items, their weights, the exact
// min/max, and a prebuilt Eytzinger rank index. It owns its storage, so it
// stays valid — and answers identically — forever, regardless of what the
// source sketch does next. Any number of goroutines may query one Snapshot
// concurrently with no synchronization.
//
// Every container's Snapshot() method returns this type:
//
//   - Sketch[T] (and Float64/Uint64) deep-copy their frozen coreset;
//   - ConcurrentFloat64 does the same under its lock;
//   - Sharded[T] publishes its current epoch snapshot directly (no copy) —
//     taking snapshots of a sharded sketch between writes is free.
//
// A Snapshot answers exactly what the source sketch would have answered at
// capture time (bit-identical to the live sketch's frozen answers) but
// carries only the coreset: it cannot ingest, merge, or resume the stream.
// Use Clone (or serialize the full sketch) when the mutable state must
// travel too; use Snapshot when readers only need to query.
//
// Float64 and uint64 snapshots also serialize: MarshalBinary encodes the
// coreset in the package's versioned binary format (a query-only record
// carrying no mutable sketch state) and UnmarshalSnapshotFloat64 /
// UnmarshalSnapshotUint64 restore a queryable Snapshot — the shape shipped
// to read replicas.
type Snapshot[T any] struct {
	f *core.Frozen[T]
}

// SnapshotFloat64 is the float64 instantiation of Snapshot, as returned by
// Float64.Snapshot, ConcurrentFloat64.Snapshot and ShardedFloat64.Snapshot.
type SnapshotFloat64 = Snapshot[float64]

// SnapshotUint64 is the uint64 instantiation of Snapshot, as returned by
// Uint64.Snapshot and ShardedUint64.Snapshot.
type SnapshotUint64 = Snapshot[uint64]

// Count returns the total number of items summarised at capture time.
//
//req:noalloc
func (sn *Snapshot[T]) Count() uint64 { return sn.f.Count() }

// Empty reports whether the snapshot summarises no items.
//
//req:noalloc
func (sn *Snapshot[T]) Empty() bool { return sn.f.Empty() }

// Min returns the smallest item seen (tracked exactly). ok is false when
// the snapshot is empty.
//
//req:noalloc
func (sn *Snapshot[T]) Min() (item T, ok bool) { return sn.f.Min() }

// Max returns the largest item seen (tracked exactly). ok is false when
// the snapshot is empty.
//
//req:noalloc
func (sn *Snapshot[T]) Max() (item T, ok bool) { return sn.f.Max() }

// Rank returns the estimated inclusive rank of y, answered from the
// snapshot's rank index; see Sketch.Rank for the guarantee.
//
//req:noalloc
func (sn *Snapshot[T]) Rank(y T) uint64 { return sn.f.Rank(y) }

// RankExclusive returns the estimated exclusive rank of y.
//
//req:noalloc
func (sn *Snapshot[T]) RankExclusive(y T) uint64 { return sn.f.RankExclusive(y) }

// NormalizedRank returns Rank(y)/Count() in [0, 1] (0 when empty).
//
//req:noalloc
func (sn *Snapshot[T]) NormalizedRank(y T) float64 { return sn.f.NormalizedRank(y) }

// RankBatch answers every probe in ys with one galloping sweep, writing
// into dst (grown as needed) in probe order; see Sketch.RankBatch. dst must
// not be shared between concurrent callers.
func (sn *Snapshot[T]) RankBatch(dst []uint64, ys []T) []uint64 { return sn.f.RankBatch(dst, ys) }

// NormalizedRankBatch is RankBatch normalized by Count().
func (sn *Snapshot[T]) NormalizedRankBatch(dst []float64, ys []T) []float64 {
	return sn.f.NormalizedRankBatch(dst, ys)
}

// Quantile returns the item at normalized rank phi; see Sketch.Quantile.
func (sn *Snapshot[T]) Quantile(phi float64) (T, error) { return sn.f.Quantile(phi) }

// Quantiles returns the items at each normalized rank.
func (sn *Snapshot[T]) Quantiles(phis []float64) ([]T, error) { return sn.f.Quantiles(phis) }

// QuantilesInto answers every normalized rank in phis, writing into dst
// (grown as needed); dst must not be shared between concurrent callers.
func (sn *Snapshot[T]) QuantilesInto(dst []T, phis []float64) ([]T, error) {
	return sn.f.QuantilesInto(dst, phis)
}

// CDF returns the estimated normalized ranks at each ascending split point.
func (sn *Snapshot[T]) CDF(splits []T) ([]float64, error) { return sn.f.CDF(splits) }

// CDFInto is CDF writing into dst (grown as needed); dst must not be shared
// between concurrent callers.
func (sn *Snapshot[T]) CDFInto(dst []float64, splits []T) ([]float64, error) {
	return sn.f.CDFInto(dst, splits)
}

// PMF returns the estimated probability mass of each interval delimited by
// the ascending split points.
func (sn *Snapshot[T]) PMF(splits []T) ([]float64, error) { return sn.f.PMF(splits) }

// PMFInto is PMF writing into dst (grown as needed); dst must not be shared
// between concurrent callers.
func (sn *Snapshot[T]) PMFInto(dst []float64, splits []T) ([]float64, error) {
	return sn.f.PMFInto(dst, splits)
}

// ItemsRetained returns the number of coreset entries the snapshot holds.
//
//req:noalloc
func (sn *Snapshot[T]) ItemsRetained() int { return sn.f.Size() }

// All iterates the snapshot's weighted coreset: every retained item in
// ascending order with its weight. Weights sum to Count() exactly. The
// iteration allocates nothing and, the snapshot being immutable, is safe
// from any number of goroutines at once.
func (sn *Snapshot[T]) All() iter.Seq2[T, uint64] {
	return func(yield func(item T, weight uint64) bool) {
		for i, x := range sn.f.Items() {
			if !yield(x, sn.f.Weight(i)) {
				return
			}
		}
	}
}

// Epsilon returns the relative-error target the source sketch was built
// with.
func (sn *Snapshot[T]) Epsilon() float64 { return sn.f.Config().Eps }

// Delta returns the failure probability the source sketch was built with.
func (sn *Snapshot[T]) Delta() float64 { return sn.f.Config().Delta }

// String returns a short human-readable summary.
func (sn *Snapshot[T]) String() string {
	return fmt.Sprintf("req.Snapshot{n=%d, retained=%d}", sn.Count(), sn.ItemsRetained())
}
