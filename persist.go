package req

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"req/internal/core"
	"req/internal/snapstore"
)

// Crash-safe zero-copy snapshot persistence.
//
// A Snapshot's storage is five parallel arrays (sorted items, cumulative
// weights, and the three arrays of its Eytzinger rank index). SaveSnapshot
// writes them raw — little-endian, 64-byte-aligned, each protected by a
// CRC32C — into a versioned slab file, and OpenSnapshot* serves queries
// directly FROM that file: on unix the file is mmap'd read-only and the
// arrays are aliased in place, so opening performs no per-item decoding
// and no per-item allocation regardless of snapshot size. Elsewhere (or
// with WithoutMmap) the file is read into one aligned buffer and aliased
// the same way.
//
// Durability model (see internal/snapstore for the format and the
// fault-injection proof):
//
//   - each save writes a NEW generation file (snap-<gen>.reqsnap) via
//     write-temp → fsync(file) → rename → fsync(dir), so a crash at any
//     byte leaves either the previous generations or the new one — never
//     a torn file under a final name;
//   - opening a directory recovers the newest generation that validates,
//     skipping torn or corrupt files (ErrTornWrite / ErrCorrupt detail the
//     rejections when nothing survives);
//   - old generations are pruned only after the new one is durable.
//
// The mapping is read-only (PROT_READ): the kernel enforces the package's
// aliasing discipline, and a mapped snapshot stays valid even if its file
// is pruned later (the inode lives until Close).

// Re-exported persistence sentinels. Both are distinct from ErrCorrupt in
// errors.Is terms — but every ErrTornWrite also Is ErrCorrupt, and open
// failures from the req layer additionally wrap req.ErrCorrupt.
var (
	// ErrTornWrite marks a snapshot file whose write never completed:
	// truncated mid-write, missing its footer, or shorter than its own
	// layout says. It wraps ErrCorrupt.
	ErrTornWrite = snapstore.ErrTornWrite
	// ErrNoSnapshot is returned when opening a snapshot directory that
	// contains no generations at all.
	ErrNoSnapshot = snapstore.ErrNoSnapshot
)

// VerifyMode selects how much of a snapshot file is checked at open.
type VerifyMode int

const (
	// VerifyChecksum (the default) validates the footer, the header, and
	// every section's CRC32C — one pass over the raw bytes at memory
	// bandwidth, still with no per-item decoding or allocation.
	VerifyChecksum VerifyMode = iota
	// VerifyFull adds an O(n) structural audit on top of the checksums:
	// items sorted, weights strictly increasing and conserved, rank index
	// an exact mirror of the sorted view, no NaN floats. Use it when the
	// file's producer is untrusted (checksums only prove the file is what
	// its writer wrote, not that its writer was honest).
	VerifyFull
	// VerifyNone skips section checksums: O(1) structural checks only
	// (magic, footer/torn-write detection, header CRC, section geometry).
	// Opening is microseconds at any size; use for files under the
	// caller's own integrity regime.
	VerifyNone
)

// OpenOption tunes OpenSnapshot* calls.
type OpenOption func(*openConfig)

type openConfig struct {
	verify VerifyMode
	noMmap bool
}

// WithVerify selects the verification level (default VerifyChecksum).
func WithVerify(m VerifyMode) OpenOption {
	return func(c *openConfig) { c.verify = m }
}

// WithoutMmap forces the portable read path: the file is read into one
// aligned buffer instead of memory-mapped. Queries behave identically.
func WithoutMmap() OpenOption {
	return func(c *openConfig) { c.noMmap = true }
}

func resolveOpen(opts []OpenOption) (openConfig, snapstore.OpenOptions) {
	var c openConfig
	for _, o := range opts {
		o(&c)
	}
	return c, snapstore.OpenOptions{
		SkipChecksum: c.verify == VerifyNone,
		NoMmap:       c.noMmap,
	}
}

// MappedSnapshot is a Snapshot served zero-copy from a persisted snapshot
// file. It answers every Snapshot query (bit-identically to the Snapshot
// that was saved) while its arrays alias the file's read-only mapping, so
// it adds no heap copy of the coreset. Close releases the mapping; every
// query after Close may fault — close only after the last reader is done.
// Like Snapshot, a MappedSnapshot is immutable and safe for any number of
// concurrent readers.
type MappedSnapshot[T any] struct {
	Snapshot[T]
	file *snapstore.File
	gen  uint64
}

// MappedFloat64 is the float64 instantiation of MappedSnapshot.
type MappedFloat64 = MappedSnapshot[float64]

// MappedUint64 is the uint64 instantiation of MappedSnapshot.
type MappedUint64 = MappedSnapshot[uint64]

// Generation returns the snapshot file's generation number.
func (m *MappedSnapshot[T]) Generation() uint64 { return m.gen }

// Mapped reports whether the snapshot is served by a memory mapping
// (false on the portable read path).
func (m *MappedSnapshot[T]) Mapped() bool { return m.file.Mapped() }

// Close releases the file mapping. The snapshot — and any slice iterated
// from it — must not be used afterwards.
func (m *MappedSnapshot[T]) Close() error { return m.file.Close() }

// The natural orders the typed open paths rebuild snapshots with — the
// canonical functions Float64/Uint64 sketches are built with, so reopened
// snapshots answer queries through the same kernel layer.
var (
	lessFloat64 = core.LessF64
	lessUint64  = core.LessU64
)

// appendUint64sLE appends vs as little-endian bytes.
func appendUint64sLE(out []byte, vs []uint64) []byte {
	off := len(out)
	out = appendZeros(out, 8*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint64(out[off:], v)
		off += 8
	}
	return out
}

// snapshotPayload lowers a frozen coreset to the slab format's payload:
// the serde snapshot header as the application header, and the five
// storage arrays as raw little-endian sections.
func snapshotPayload[T any](f *core.Frozen[T], codec itemCodec[T]) *snapstore.Payload {
	parts := f.Parts()
	p := &snapstore.Payload{
		App:      appendSnapshotHeader(make([]byte, 0, 128), f, codec),
		Count:    uint64(len(parts.Items)),
		IdxTotal: parts.IdxTotal,
	}
	if len(parts.Items) == 0 {
		return p
	}
	p.Sections[snapstore.SecViewItems] = codec.putAll(make([]byte, 0, 8*len(parts.Items)), parts.Items)
	p.Sections[snapstore.SecViewCum] = appendUint64sLE(make([]byte, 0, 8*len(parts.Cum)), parts.Cum)
	p.Sections[snapstore.SecIdxItems] = codec.putAll(make([]byte, 0, 8*len(parts.IdxItems)), parts.IdxItems)
	p.Sections[snapstore.SecIdxCum] = appendUint64sLE(make([]byte, 0, 8*len(parts.IdxCum)), parts.IdxCum)
	p.Sections[snapstore.SecIdxBefore] = appendUint64sLE(make([]byte, 0, 8*len(parts.IdxBefore)), parts.IdxBefore)
	return p
}

// payloadFor validates that T persists and lowers the snapshot.
func payloadFor[T any](sn *Snapshot[T]) (*snapstore.Payload, error) {
	codec, ok := codecFor[T]()
	if !ok {
		return nil, fmt.Errorf("req: snapshot persistence supports float64 and uint64 items only")
	}
	return snapshotPayload(sn.f, codec), nil
}

// SaveSnapshot durably writes the snapshot as the next generation in the
// snapshot directory dir (created if missing) and returns the generation
// number. The write is atomic under crashes — a reader (or a restart)
// sees either the previous generations or the new one, never a torn file
// — and old generations beyond the most recent two are pruned only once
// the new one is durable.
func (sn *Snapshot[T]) SaveSnapshot(dir string) (uint64, error) {
	p, err := payloadFor(sn)
	if err != nil {
		return 0, err
	}
	return snapstore.NewStore(snapstore.OS, dir).Save(p)
}

// WriteSnapshotFile durably writes the snapshot as a single standalone
// file at path (write-temp → fsync → rename → fsync(dir)), outside any
// generation rotation. Open it with OpenSnapshotFileFloat64 /
// OpenSnapshotFileUint64.
func (sn *Snapshot[T]) WriteSnapshotFile(path string) error {
	p, err := payloadFor(sn)
	if err != nil {
		return err
	}
	return snapstore.WriteSnapshotFile(snapstore.OS, path, 1, p)
}

// SaveSnapshot captures the sketch's current state and durably writes it
// to the snapshot directory dir; see Snapshot.SaveSnapshot.
func (s *Float64) SaveSnapshot(dir string) (uint64, error) { return s.Snapshot().SaveSnapshot(dir) }

// SaveSnapshot captures the sketch's current state and durably writes it
// to the snapshot directory dir; see Snapshot.SaveSnapshot.
func (s *Uint64) SaveSnapshot(dir string) (uint64, error) { return s.Snapshot().SaveSnapshot(dir) }

// SaveSnapshot captures the sketch's current state under its lock and
// durably writes it to the snapshot directory dir; see
// Snapshot.SaveSnapshot.
func (c *ConcurrentFloat64) SaveSnapshot(dir string) (uint64, error) {
	return c.Snapshot().SaveSnapshot(dir)
}

// SaveSnapshot captures the sharded sketch's current epoch snapshot and
// durably writes it to the snapshot directory dir. Only float64 and
// uint64 item types persist; other types return an error. See
// Snapshot.SaveSnapshot.
func (s *Sharded[T]) SaveSnapshot(dir string) (uint64, error) {
	return s.Snapshot().SaveSnapshot(dir)
}

// wrapOpenErr folds a snapstore rejection into the package error space:
// corruption rejections additionally wrap req.ErrCorrupt (ErrTornWrite
// and ErrNoSnapshot already pass errors.Is for their own sentinels).
func wrapOpenErr(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNoSnapshot) {
		return err
	}
	if errors.Is(err, snapstore.ErrCorrupt) {
		return fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return err
}

// sectionWords views an 8-aligned section as []uint64: a zero-copy alias
// on little-endian hosts, a decoded copy elsewhere.
func sectionWords(sec []byte) []uint64 {
	if snapstore.AliasingOK() {
		return snapstore.Words(sec)
	}
	out := make([]uint64, len(sec)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(sec[8*i:])
	}
	return out
}

// sectionFloats is sectionWords for float64 payloads.
func sectionFloats(sec []byte) []float64 {
	if snapstore.AliasingOK() {
		return snapstore.Floats(sec)
	}
	out := make([]float64, len(sec)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(sec[8*i:]))
	}
	return out
}

// openMapped bridges an opened slab file to a queryable snapshot: parse
// the application header (the serde snapshot prefix — O(1)), alias the
// five sections as the frozen coreset's arrays, and rebuild the Frozen
// around them with O(1) validation. With VerifyFull, an O(n) structural
// audit runs on top. On success the returned snapshot owns the file.
func openMapped[T any](
	file *snapstore.File,
	less func(a, b T) bool,
	codec itemCodec[T],
	itemsOf func([]byte) []T,
	verify VerifyMode,
) (*MappedSnapshot[T], error) {
	r := reader{buf: file.Header.App}
	cfg, hasMinMax, n, mn, mx, err := decodeSnapshotPrefix(&r, codec)
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("%w: application header: %w", snapstore.ErrCorrupt, err)
	}
	if r.remaining() != 0 {
		file.Close()
		return nil, fmt.Errorf("%w: %w: %d trailing application header bytes", ErrCorrupt, snapstore.ErrCorrupt, r.remaining())
	}
	parts := core.FrozenParts[T]{
		Items:     itemsOf(file.Section(snapstore.SecViewItems)),
		Cum:       sectionWords(file.Section(snapstore.SecViewCum)),
		IdxItems:  itemsOf(file.Section(snapstore.SecIdxItems)),
		IdxCum:    sectionWords(file.Section(snapstore.SecIdxCum)),
		IdxBefore: sectionWords(file.Section(snapstore.SecIdxBefore)),
		IdxTotal:  file.Header.IdxTotal,
	}
	f, err := core.FrozenFromParts(less, cfg, n, mn, mx, hasMinMax, parts)
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("%w: %w: %v", ErrCorrupt, snapstore.ErrCorrupt, err)
	}
	if verify == VerifyFull {
		if err := f.VerifyStructure(codec.validate); err != nil {
			file.Close()
			return nil, fmt.Errorf("%w: %w: %v", ErrCorrupt, snapstore.ErrCorrupt, err)
		}
	}
	return &MappedSnapshot[T]{
		Snapshot: Snapshot[T]{f: f},
		file:     file,
		gen:      file.Header.Gen,
	}, nil
}

// OpenSnapshotFloat64 opens the newest valid generation in the snapshot
// directory dir as a zero-copy queryable snapshot, skipping torn or
// corrupt generations (crash recovery). It returns ErrNoSnapshot when the
// directory holds no generations, and an error wrapping ErrCorrupt when
// generations exist but none validates. Close the result when done.
func OpenSnapshotFloat64(dir string, opts ...OpenOption) (*MappedFloat64, error) {
	c, so := resolveOpen(opts)
	file, err := snapstore.NewStore(snapstore.OS, dir).OpenLatest(so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openMapped(file, lessFloat64, float64Codec, sectionFloats, c.verify)
}

// OpenSnapshotUint64 is OpenSnapshotFloat64 for uint64 snapshots.
func OpenSnapshotUint64(dir string, opts ...OpenOption) (*MappedUint64, error) {
	c, so := resolveOpen(opts)
	file, err := snapstore.NewStore(snapstore.OS, dir).OpenLatest(so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openMapped(file, lessUint64, uint64Codec, sectionWords, c.verify)
}

// OpenSnapshotFileFloat64 opens one snapshot file (a generation file or a
// WriteSnapshotFile product) as a zero-copy queryable snapshot. Torn or
// corrupt files are rejected with ErrTornWrite / ErrCorrupt; the call
// never panics on hostile input.
func OpenSnapshotFileFloat64(path string, opts ...OpenOption) (*MappedFloat64, error) {
	c, so := resolveOpen(opts)
	file, err := snapstore.OpenFile(snapstore.OS, path, so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openMapped(file, lessFloat64, float64Codec, sectionFloats, c.verify)
}

// OpenSnapshotFileUint64 is OpenSnapshotFileFloat64 for uint64 snapshots.
func OpenSnapshotFileUint64(path string, opts ...OpenOption) (*MappedUint64, error) {
	c, so := resolveOpen(opts)
	file, err := snapstore.OpenFile(snapstore.OS, path, so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openMapped(file, lessUint64, uint64Codec, sectionWords, c.verify)
}
