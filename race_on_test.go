//go:build race

package req

// raceEnabled reports whether this test binary was built with the race
// detector. Under -race, sync.Pool deliberately randomizes itself (Get
// may bypass the pool), so allocation pins over pooled scratch are
// meaningless there and skip themselves.
const raceEnabled = true
