// Weighted updates: summarising pre-aggregated data.
//
// Telemetry pipelines often deliver histograms rather than raw events —
// "value 12ms seen 9,431 times this minute". UpdateWeighted folds a whole
// bucket into the sketch in O(log weight) work instead of replaying every
// event, while keeping the exact same distribution (weight conservation is
// an invariant of the implementation). This example builds two sketches of
// an identical distribution — one from 5 million raw events, one from the
// equivalent 512-bucket histogram — and shows they agree.
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"math"
	"time"

	"req"
	"req/internal/rng"
)

func main() {
	const buckets = 512
	const eventsPerBucketMean = 10_000

	// A synthetic per-bucket histogram of service latencies.
	r := rng.New(7)
	values := make([]float64, buckets)
	weights := make([]uint64, buckets)
	var total uint64
	for i := range values {
		values[i] = 5 * math.Exp(float64(i)/90) // log-spaced bucket centers
		weights[i] = uint64(float64(eventsPerBucketMean) * math.Exp(-float64(i)/128) * (0.5 + r.Float64()))
		total += weights[i]
	}
	fmt.Printf("histogram: %d buckets, %d total events\n\n", buckets, total)

	// Path A: weighted updates, one call per bucket.
	weighted, err := req.NewFloat64(req.WithEpsilon(0.01), req.WithSeed(1))
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i := range values {
		if err := weighted.Sketch.UpdateWeighted(values[i], weights[i]); err != nil {
			panic(err)
		}
	}
	weightedDur := time.Since(start)

	// Path B: replay every raw event.
	raw, err := req.NewFloat64(req.WithEpsilon(0.01), req.WithSeed(2))
	if err != nil {
		panic(err)
	}
	start = time.Now()
	for i := range values {
		for j := uint64(0); j < weights[i]; j++ {
			raw.Update(values[i])
		}
	}
	rawDur := time.Since(start)

	fmt.Printf("ingest time: weighted %v (%d calls) vs raw replay %v (%d calls)\n\n",
		weightedDur, buckets, rawDur, total)

	// Both sketches must describe the same distribution.
	fmt.Println("quantile   weighted      raw-replay    true")
	for _, phi := range []float64{0.25, 0.5, 0.9, 0.99, 0.999} {
		qw, _ := weighted.Quantile(phi)
		qr, _ := raw.Quantile(phi)
		fmt.Printf("  p%-7.2f %-13.3f %-13.3f %-13.3f\n", phi*100, qw, qr, trueQuantile(values, weights, total, phi))
	}

	fmt.Printf("\ncounts: weighted n=%d, raw n=%d (exact conservation)\n", weighted.Count(), raw.Count())
	fmt.Printf("footprints: weighted %d items, raw %d items\n", weighted.ItemsRetained(), raw.ItemsRetained())
}

// trueQuantile walks the histogram for the exact answer (buckets are
// already value-sorted by construction).
func trueQuantile(values []float64, weights []uint64, total uint64, phi float64) float64 {
	target := uint64(math.Ceil(phi * float64(total)))
	if target == 0 {
		target = 1
	}
	var run uint64
	for i := range values {
		run += weights[i]
		if run >= target {
			return values[i]
		}
	}
	return values[len(values)-1]
}
