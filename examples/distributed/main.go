// Distributed aggregation: full mergeability in action (Theorem 3).
//
// Sixteen simulated workers each sketch their own shard of a dataset; the
// shards are serialized (as they would be for a network hop), then merged
// pairwise in a reduction tree. The merged sketch answers queries for the
// full dataset within the same ε guarantee as a single-machine sketch —
// that is the content of the paper's Appendix D.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"math"
	"sort"

	"req"
	"req/internal/rng"
	"req/internal/streams"
)

const (
	workers   = 16
	perWorker = 250_000
	eps       = 0.01
)

func main() {
	// Generate the dataset and deal it across workers round-robin.
	total := workers * perWorker
	data := streams.LogNormal{Mu: 3, Sigma: 1.2}.Generate(total, rng.New(99))

	fmt.Printf("dataset: %d values across %d workers\n", total, workers)

	// Each worker sketches its shard independently (different seeds) and
	// ships the serialized sketch.
	blobs := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		sk, err := req.NewFloat64(req.WithEpsilon(eps), req.WithSeed(uint64(w+1)))
		if err != nil {
			panic(err)
		}
		for i := w; i < total; i += workers {
			sk.Update(data[i])
		}
		blob, err := sk.MarshalBinary()
		if err != nil {
			panic(err)
		}
		blobs[w] = blob
	}
	wire := 0
	for _, b := range blobs {
		wire += len(b)
	}
	fmt.Printf("shipped %d sketches, %d bytes total (%.5f%% of raw data)\n\n",
		workers, wire, 100*float64(wire)/float64(8*total))

	// Reduction tree: deserialize and merge pairwise until one remains.
	level := make([]*req.Float64, workers)
	for i, blob := range blobs {
		sk, err := req.DecodeFloat64(blob)
		if err != nil {
			panic(err)
		}
		level[i] = sk
	}
	round := 0
	for len(level) > 1 {
		round++
		var next []*req.Float64
		for i := 0; i+1 < len(level); i += 2 {
			if err := level[i].Merge(level[i+1]); err != nil {
				panic(err)
			}
			next = append(next, level[i])
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		fmt.Printf("merge round %d: %d sketches remain\n", round, len(next))
		level = next
	}
	global := level[0]

	fmt.Printf("\nglobal sketch: n=%d, retained=%d items\n\n", global.Count(), global.ItemsRetained())

	// Verify against the exact distribution.
	sort.Float64s(data)
	fmt.Println("quantile   merged-estimate   exact       rank error")
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		est, err := global.Quantile(phi)
		if err != nil {
			panic(err)
		}
		exact := data[int(math.Ceil(phi*float64(total)))-1]
		trueRank := float64(sort.SearchFloat64s(data, math.Nextafter(est, math.Inf(1))))
		rel := math.Abs(trueRank-phi*float64(total)) / (phi * float64(total))
		fmt.Printf("  p%-7.2f %-17.3f %-11.3f %.5f\n", phi*100, est, exact, rel)
	}
	fmt.Printf("\nevery rank error above should sit within ε = %v — the merged sketch is\n", eps)
	fmt.Println("as good as if one machine had seen the whole stream.")
}
