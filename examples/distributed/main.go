// Distributed aggregation: full mergeability in action (Theorem 3).
//
// Two deployments of the same idea, both resting on the paper's Appendix D
// mergeability guarantee:
//
//  1. Cross-machine: sixteen simulated workers each sketch their own shard
//     of a dataset; the shards are serialized (as they would be for a
//     network hop), then merged pairwise in a reduction tree.
//  2. In-process: the same dataset is ingested by concurrent goroutines
//     through req.ShardedFloat64, which stripes writers across per-shard
//     sketches and merges lazily at query time — the same merge machinery,
//     applied inside one process instead of across machines.
//  3. Durability: the aggregate is persisted with crash-safe generation
//     rotation, then reopened zero-copy as a fresh process would after a
//     restart — same answers, no re-ingestion, no per-item decode.
//
// Both aggregates answer queries for the full dataset within the same ε
// guarantee as a single-machine, single-goroutine sketch.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"req"
	"req/internal/rng"
	"req/internal/streams"
)

const (
	workers   = 16
	perWorker = 250_000
	eps       = 0.01
)

func main() {
	// Generate the dataset and deal it across workers round-robin.
	total := workers * perWorker
	data := streams.LogNormal{Mu: 3, Sigma: 1.2}.Generate(total, rng.New(99))

	fmt.Printf("dataset: %d values across %d workers\n", total, workers)

	crossMachine(data)
	aggregate := inProcess(data)
	durability(aggregate)
}

// crossMachine simulates the serialize → ship → merge-tree pipeline.
func crossMachine(data []float64) {
	total := len(data)

	fmt.Println("\n=== cross-machine: serialized shards, merge tree ===")

	// Each worker sketches its shard independently (different seeds) and
	// ships the serialized sketch.
	blobs := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		sk, err := req.NewFloat64(req.WithEpsilon(eps), req.WithSeed(uint64(w+1)))
		if err != nil {
			panic(err)
		}
		for i := w; i < total; i += workers {
			sk.Update(data[i])
		}
		blob, err := sk.MarshalBinary()
		if err != nil {
			panic(err)
		}
		blobs[w] = blob
	}
	wire := 0
	for _, b := range blobs {
		wire += len(b)
	}
	fmt.Printf("shipped %d sketches, %d bytes total (%.5f%% of raw data)\n\n",
		workers, wire, 100*float64(wire)/float64(8*total))

	// Reduction tree: deserialize and merge pairwise until one remains.
	level := make([]*req.Float64, workers)
	for i, blob := range blobs {
		sk, err := req.DecodeFloat64(blob)
		if err != nil {
			panic(err)
		}
		level[i] = sk
	}
	round := 0
	for len(level) > 1 {
		round++
		var next []*req.Float64
		for i := 0; i+1 < len(level); i += 2 {
			if err := level[i].Merge(level[i+1]); err != nil {
				panic(err)
			}
			next = append(next, level[i])
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		fmt.Printf("merge round %d: %d sketches remain\n", round, len(next))
		level = next
	}
	global := level[0]

	fmt.Printf("\nglobal sketch: n=%d, retained=%d items\n", global.Count(), global.ItemsRetained())
	report(data, global.Quantile)
}

// inProcess ingests the same dataset with concurrent goroutines through the
// sharded wrapper and queries it while ingestion is still running.
func inProcess(data []float64) *req.ShardedFloat64 {
	fmt.Printf("\n=== in-process: %d goroutines into a sharded sketch ===\n", workers)

	s, err := req.NewShardedFloat64(req.WithEpsilon(eps), req.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards: %d (GOMAXPROCS=%d)\n", s.NumShards(), runtime.GOMAXPROCS(0))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(data); i += workers {
				s.Update(data[i])
			}
		}(w)
	}
	// A monitoring goroutine scrapes mid-ingest: each answer is a
	// consistent point-in-time snapshot of whatever has landed so far.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		case <-ticker.C:
			if n := s.Count(); n > 0 {
				p99, err := s.Quantile(0.99)
				if err == nil {
					fmt.Printf("mid-ingest scrape: n=%-9d p99≈%.3f\n", n, p99)
				}
			}
		}
	}

	fmt.Printf("\nsharded sketch: n=%d, merged snapshot retains %d items\n",
		s.Count(), s.ItemsRetained())
	report(data, s.Quantile)

	// Two ways to ship the merged state. Full sketch state joins the
	// cross-machine merge pipeline above like any other worker's shard;
	// the immutable query snapshot is the record a read replica needs to
	// answer queries (and nothing else) — slightly larger on the wire
	// (per-item weights ride along), but it decodes straight into an
	// indexed reader with no mutable state attached.
	blob, err := s.MarshalBinary()
	if err != nil {
		panic(err)
	}
	snap := s.Snapshot() // shared epoch snapshot: no clone between writes
	snapBlob, err := snap.MarshalBinary()
	if err != nil {
		panic(err)
	}
	fmt.Printf("serialized merged state: %d bytes full sketch, %d bytes query-only snapshot\n",
		len(blob), len(snapBlob))
	replica, err := req.UnmarshalSnapshotFloat64(snapBlob)
	if err != nil {
		panic(err)
	}
	if p99a, _ := snap.Quantile(0.99); p99a != mustQ(replica.Quantile(0.99)) {
		panic("replica snapshot answers differently")
	}
	fmt.Printf("read replica restored from snapshot: n=%d, p99 matches\n", replica.Count())
	return s
}

// durability persists the aggregate with generation rotation and reopens
// it the way a restarted process would: zero-copy from the newest durable
// generation.
func durability(s *req.ShardedFloat64) {
	fmt.Println("\n=== durability: crash-safe save, zero-copy restart ===")

	dir, err := os.MkdirTemp("", "req-snaps-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Each save writes a NEW generation atomically (write-temp → fsync →
	// rename → fsync(dir)): a crash mid-save leaves the previous generation
	// intact, and old generations are pruned only after the new one is
	// durable. Saving twice demonstrates the rotation.
	gen1, err := s.SaveSnapshot(dir)
	if err != nil {
		panic(err)
	}
	gen2, err := s.SaveSnapshot(dir)
	if err != nil {
		panic(err)
	}
	fmt.Printf("saved generations %d and %d under %s\n", gen1, gen2, dir)

	// "Restart": a fresh process knows only the directory. Opening recovers
	// the newest valid generation and serves queries straight from the
	// mmap'd file — O(1) open, no per-item decode, no heap copy of the
	// coreset.
	live := s.Snapshot()
	m, err := req.OpenSnapshotFloat64(dir)
	if err != nil {
		panic(err)
	}
	defer m.Close()
	how := "portable read"
	if m.Mapped() {
		how = "mmap, zero-copy"
	}
	fmt.Printf("reopened generation %d (%s): n=%d, retained=%d items\n",
		m.Generation(), how, m.Count(), m.ItemsRetained())

	for _, phi := range []float64{0.5, 0.99, 0.999} {
		a, _ := live.Quantile(phi)
		b, _ := m.Quantile(phi)
		if a != b {
			panic("restarted snapshot answers differently")
		}
	}
	fmt.Println("restarted snapshot answers match the live aggregate exactly")
}

// mustQ unwraps a quantile result in the replica cross-check.
func mustQ(v float64, err error) float64 {
	if err != nil {
		panic(err)
	}
	return v
}

// report checks estimated quantiles against the exact distribution.
func report(data []float64, quantile func(float64) (float64, error)) {
	total := len(data)
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	fmt.Println("\nquantile   estimate          exact       rank error")
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		est, err := quantile(phi)
		if err != nil {
			panic(err)
		}
		exact := sorted[int(math.Ceil(phi*float64(total)))-1]
		trueRank := float64(sort.SearchFloat64s(sorted, math.Nextafter(est, math.Inf(1))))
		rel := math.Abs(trueRank-phi*float64(total)) / (phi * float64(total))
		fmt.Printf("  p%-7.2f %-17.3f %-11.3f %.5f\n", phi*100, est, exact, rel)
	}
	fmt.Printf("\nevery rank error above should sit within ε = %v\n", eps)
}
