// Unknown stream length: Section 5 of the paper.
//
// The sketch never needs to know how long the stream will be. It starts
// with a small bound N₀ and squares it whenever the stream outgrows it
// (running a "special compaction" at each level and recomputing the buffer
// geometry). This example streams three orders of magnitude past the
// initial bound and shows the geometry adapting while accuracy holds; it
// also compares against a sketch that was told n in advance.
//
//	go run ./examples/unknownlength
package main

import (
	"fmt"
	"math"

	"req"
	"req/internal/rng"
)

func main() {
	unknown, err := req.NewFloat64(req.WithEpsilon(0.02), req.WithSeed(5))
	if err != nil {
		panic(err)
	}
	known, err := req.NewFloat64(req.WithEpsilon(0.02), req.WithSeed(5), req.WithKnownN(1<<22))
	if err != nil {
		panic(err)
	}

	const n = 1 << 22 // ~4.2M items
	r := rng.New(11)
	perm := r.Perm(n)

	checkpoints := map[int]bool{
		1 << 12: true, 1 << 14: true, 1 << 16: true, 1 << 18: true, 1 << 20: true, 1 << 22: true,
	}
	fmt.Println("streaming with no advance knowledge of n:")
	fmt.Printf("%12s %10s %8s %10s %12s\n", "n so far", "levels", "k", "retained", "p50 rel err")
	for i, v := range perm {
		unknown.Update(float64(v))
		known.Update(float64(v))
		if checkpoints[i+1] {
			seen := i + 1
			// Query the median-rank item among those seen so far. Values
			// are a permutation of 0..n-1, so we query the sketch with a
			// value and compare against its rank among seen items — use
			// the count itself as a proxy via the full-range rank.
			est := float64(unknown.Rank(float64(n))) // = seen, exact by weight conservation
			_ = est
			med, err := unknown.Quantile(0.5)
			if err != nil {
				panic(err)
			}
			trueMedRank := rankAmong(perm[:seen], med)
			rel := math.Abs(trueMedRank-0.5*float64(seen)) / (0.5 * float64(seen))
			fmt.Printf("%12d %10d %8d %10d %12.5f\n",
				seen, unknown.NumLevels(), unknown.K(), unknown.ItemsRetained(), rel)
		}
	}

	fmt.Printf("\nfinal footprints: unknown-n %d items vs known-n %d items\n",
		unknown.ItemsRetained(), known.ItemsRetained())
	fmt.Println("\nSection 5's promise: the squaring schedule costs only a constant factor in")
	fmt.Println("space and nothing in accuracy — the two sketches are interchangeable.")
}

// rankAmong counts values ≤ y in vs (exact, O(len)).
func rankAmong(vs []int, y float64) float64 {
	cnt := 0
	for _, v := range vs {
		if float64(v) <= y {
			cnt++
		}
	}
	return float64(cnt)
}
