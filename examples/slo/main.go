// SLO dashboard: per-endpoint windowed p99 under churn — the registry's
// reason to exist.
//
// A fleet of endpoints with wildly different traffic shares streams
// latencies into one WindowedRegistryFloat64: every endpoint gets its
// own ring of sketch slots, queries answer over the trailing window
// only, idle endpoints expire under a TTL, and a capacity cap keeps the
// resident population bounded no matter how many distinct endpoints
// appear. A synthetic clock drives rotation so the run is deterministic.
//
// The demo prints a small dashboard after each simulated minute: the
// busiest endpoints' windowed p50/p99 against the exact p99 over the
// same window, then shifts traffic (the v1 endpoints go cold, a new
// deployment's v2 endpoints appear) and shows eviction reclaiming the
// cold keys while the survivors' answers stay within ε.
//
// Ingest is batched the way a real collector would: requests accumulate
// into a (key, value) buffer and flush through UpdatePairs, which groups
// the batch by shard and feeds each key's run through the sketch kernels
// in one lock acquisition per shard — same answers as per-op Update,
// fewer lock round-trips and cell lookups.
//
//	go run ./examples/slo
package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"req"
	"req/internal/rng"
)

const (
	slots    = 5
	slotDur  = time.Minute
	ttl      = 3 * time.Minute
	maxKeys  = 64
	perTick  = 40_000 // requests per simulated minute
	simTicks = 10
	flushAt  = 512 // collector batch size for UpdatePairs
)

// endpoint is one traffic source: a name, a share of traffic, and a
// latency shape (log-normal body: exp of a scaled normal).
type endpoint struct {
	name  string
	share float64
	scale float64 // median latency ms
	sigma float64 // tail heaviness
}

func main() {
	var now int64 // synthetic nanosecond clock
	reg, err := req.NewWindowedRegistryFloat64(
		req.WithEpsilon(0.02),
		req.WithHighRankAccuracy(), // p99 is the number that pages
		req.WithWindow(slots, slotDur),
		req.WithTTL(ttl),
		req.WithMaxEntries(maxKeys),
		req.WithSeed(7),
		req.WithClock(func() int64 { return now }),
	)
	if err != nil {
		panic(err)
	}

	gen1 := fleet("v1", 12)
	gen2 := fleet("v2", 12)
	r := rng.New(42)

	// Exact mirror of every live window: per endpoint, per minute, the
	// raw values — pruned as minutes fall out of the window.
	exact := map[string]map[int][]float64{}

	// Collector buffer: requests batch here and flush through
	// UpdatePairs (reused across flushes — steady state allocates
	// nothing).
	batchKeys := make([]string, 0, flushAt)
	batchVals := make([]float64, 0, flushAt)
	flush := func() {
		reg.UpdatePairs(batchKeys, batchVals)
		batchKeys = batchKeys[:0]
		batchVals = batchVals[:0]
	}

	fmt.Printf("window: %d × %s; TTL %s; capacity %d keys; ε=0.02 (HRA)\n",
		slots, slotDur, ttl, maxKeys)
	for tick := 0; tick < simTicks; tick++ {
		now = int64(tick) * int64(slotDur)

		// Traffic: v1 serves the first half of the run, v2 the second;
		// the handover minute serves both (a rolling deploy).
		var active []endpoint
		switch {
		case tick < simTicks/2:
			active = gen1
		case tick == simTicks/2:
			active = append(append([]endpoint{}, gen1...), gen2...)
		default:
			active = gen2
		}

		for i := 0; i < perTick; i++ {
			ep := pick(active, r)
			v := ep.scale * math.Exp(ep.sigma*r.NormFloat64())
			batchKeys = append(batchKeys, ep.name)
			batchVals = append(batchVals, v)
			if len(batchKeys) == flushAt {
				flush()
			}
			byTick := exact[ep.name]
			if byTick == nil {
				byTick = map[int][]float64{}
				exact[ep.name] = byTick
			}
			byTick[tick] = append(byTick[tick], v)
		}
		flush() // drain the partial batch before querying the minute

		// Prune the mirror: drop minutes outside the window and
		// endpoints the registry evicted.
		for name, byTick := range exact {
			if !reg.Contains(name) {
				delete(exact, name)
				continue
			}
			for t := range byTick {
				if t <= tick-slots {
					delete(byTick, t)
				}
			}
		}

		expired := reg.ExpireNow()
		fmt.Printf("\nminute %2d  resident=%d evicted_total=%d expired_now=%d\n",
			tick, reg.Len(), reg.Evictions(), expired)
		fmt.Printf("  %-14s %10s %10s %10s %10s %8s\n",
			"endpoint", "win_count", "p50(ms)", "p99(ms)", "exact_p99", "rankerr")
		for _, ep := range top(active, 4) {
			n := reg.Count(ep.name)
			if n == 0 {
				continue
			}
			qs, err := reg.QuantilesInto(ep.name, nil, []float64{0.5, 0.99})
			if err != nil {
				panic(err)
			}
			exactP99, rankerr := exactTail(exact[ep.name], qs[1])
			fmt.Printf("  %-14s %10d %10.2f %10.2f %10.2f %8.4f\n",
				ep.name, n, qs[0], qs[1], exactP99, rankerr)
		}
	}

	fmt.Printf("\nfinal population: %s — cold v1 endpoints expired, v2 resident\n", reg)
}

// fleet builds n endpoints with a power-law traffic split.
func fleet(prefix string, n int) []endpoint {
	eps := make([]endpoint, n)
	total := 0.0
	for i := range eps {
		share := 1.0 / float64(i+1)
		eps[i] = endpoint{
			name:  fmt.Sprintf("%s/api-%02d", prefix, i),
			share: share,
			scale: 8 + 3*float64(i%5),
			sigma: 0.6 + 0.1*float64(i%4),
		}
		total += share
	}
	for i := range eps {
		eps[i].share /= total
	}
	return eps
}

// pick draws an endpoint proportional to its traffic share.
func pick(eps []endpoint, r *rng.Source) endpoint {
	u := r.Float64()
	for _, ep := range eps {
		if u < ep.share {
			return ep
		}
		u -= ep.share
	}
	return eps[len(eps)-1]
}

// top returns the n busiest endpoints of the active set.
func top(eps []endpoint, n int) []endpoint {
	out := append([]endpoint{}, eps...)
	sort.Slice(out, func(i, j int) bool { return out[i].share > out[j].share })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// exactTail computes the exact p99 over the endpoint's mirrored window
// and the normalized rank error of the sketch's p99 estimate against it.
func exactTail(byTick map[int][]float64, est float64) (exactP99, rankerr float64) {
	var vals []float64
	for _, vs := range byTick {
		vals = append(vals, vs...)
	}
	if len(vals) == 0 {
		return math.NaN(), math.NaN()
	}
	sort.Float64s(vals)
	n := len(vals)
	exactP99 = vals[int(math.Ceil(0.99*float64(n)))-1]
	rank := sort.SearchFloat64s(vals, math.Nextafter(est, math.Inf(1)))
	rankerr = math.Abs(float64(rank)-0.99*float64(n)) / float64(n)
	return exactP99, rankerr
}
