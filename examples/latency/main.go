// Latency monitoring: the paper's motivating application (Section 1).
//
// A service's response times are heavily long-tailed; what pages an
// operator is p99/p99.9/p99.99, where only a handful of requests live.
// This example streams synthetic web latencies into (a) a REQ sketch in
// high-rank-accuracy mode and (b) an additive-error KLL sketch of a similar
// footprint, then compares how far each one's tail percentile estimates
// drift from the truth.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"math"
	"sort"

	"req"
	"req/internal/kll"
	"req/internal/rng"
	"req/internal/streams"
)

func main() {
	const n = 2_000_000
	fmt.Printf("simulating %d requests (log-normal body + Pareto tail)...\n\n", n)
	latencies := streams.Latency{}.Generate(n, rng.New(2024))

	reqSketch, err := req.NewFloat64(
		req.WithEpsilon(0.01),
		req.WithHighRankAccuracy(), // the tail is where accuracy matters
		req.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	kllSketch := kll.New(kll.KForEpsilon(0.01), 1)

	for _, v := range latencies {
		reqSketch.Update(v)
		kllSketch.Update(v)
	}

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	exactQ := func(phi float64) float64 {
		return sorted[int(math.Ceil(phi*float64(n)))-1]
	}
	trueRank := func(y float64) float64 {
		return float64(sort.SearchFloat64s(sorted, math.Nextafter(y, math.Inf(1))))
	}

	fmt.Printf("%-10s %12s %12s %12s %16s %16s\n",
		"percentile", "exact(ms)", "req(ms)", "kll(ms)", "req tail err", "kll tail err")
	for _, phi := range []float64{0.50, 0.90, 0.99, 0.999, 0.9999, 0.99999} {
		exact := exactQ(phi)
		reqEst, err := reqSketch.Quantile(phi)
		if err != nil {
			panic(err)
		}
		kllEst, err := kllSketch.Quantile(phi)
		if err != nil {
			panic(err)
		}
		// Tail error: how far the estimate's true rank is from the target,
		// relative to the tail mass above the target — the number that
		// decides whether a p99.9 alert fires for the right latency.
		tail := float64(n)*(1-phi) + 1
		reqErr := math.Abs(trueRank(reqEst)-phi*float64(n)) / tail
		kllErr := math.Abs(trueRank(kllEst)-phi*float64(n)) / tail
		fmt.Printf("p%-9.3f %12.2f %12.2f %12.2f %15.4f%% %15.4f%%\n",
			phi*100, exact, reqEst, kllEst, 100*reqErr, 100*kllErr)
	}

	fmt.Printf("\nfootprints: req %d items, kll %d items\n",
		reqSketch.ItemsRetained(), kllSketch.ItemsRetained())
	fmt.Println("\nthe additive sketch's error budget (εn) swamps the thin tail; the REQ")
	fmt.Println("sketch keeps the same *relative* accuracy at p50 and at p99.999 — the")
	fmt.Println("behaviour Theorem 1 guarantees and the reason the paper exists.")
}
