// Quickstart: build a REQ sketch over a million values, query ranks and
// quantiles, and compare a few estimates against the exact answers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"sort"

	"req"
	"req/internal/rng"
)

func main() {
	// A sketch with 1% relative rank error at 99% confidence.
	sketch, err := req.NewFloat64(req.WithEpsilon(0.01), req.WithSeed(42))
	if err != nil {
		panic(err)
	}

	// Stream a million pseudo-random values. We keep a copy only to show
	// exact answers next to the estimates — the sketch itself stores a few
	// thousand items.
	const n = 1_000_000
	r := rng.New(7)
	values := make([]float64, n)
	for i := range values {
		values[i] = r.NormFloat64()*15 + 100 // N(100, 15²)
	}
	for _, v := range values {
		sketch.Update(v)
	}

	fmt.Printf("stream length:   %d values\n", sketch.Count())
	fmt.Printf("sketch footprint: %d items in %d levels (%.4f%% of the stream)\n\n",
		sketch.ItemsRetained(), sketch.NumLevels(),
		100*float64(sketch.ItemsRetained())/float64(n))

	// Quantiles: estimated vs exact.
	sort.Float64s(values)
	fmt.Println("quantile   estimate     exact        rank err")
	for _, phi := range []float64{0.01, 0.25, 0.50, 0.75, 0.99, 0.999} {
		est, err := sketch.Quantile(phi)
		if err != nil {
			panic(err)
		}
		exact := values[int(math.Ceil(phi*n))-1]
		// The guarantee is on ranks: look up the estimate's true rank.
		trueRank := sort.SearchFloat64s(values, math.Nextafter(est, math.Inf(1)))
		relErr := math.Abs(float64(trueRank)-phi*n) / (phi * n)
		fmt.Printf("  p%-7.3f %-12.4f %-12.4f %.5f\n", phi*100, est, exact, relErr)
	}

	// Rank queries.
	fmt.Println("\nrank queries (estimated count of values ≤ y):")
	for _, y := range []float64{70, 100, 130, 145} {
		est := sketch.Rank(y)
		exact := sort.SearchFloat64s(values, math.Nextafter(y, math.Inf(1)))
		fmt.Printf("  rank(%6.1f) ≈ %8d   exact %8d\n", y, est, exact)
	}

	// Exact extremes come free.
	mn, _ := sketch.Min()
	mx, _ := sketch.Max()
	fmt.Printf("\nexact min/max: %.4f / %.4f\n", mn, mx)
}
