package req

// Golden cross-version serde fixtures.
//
// The .bin files under testdata/serde were produced by the encoder AS IT
// EXISTED BEFORE the contiguous level-store refactor (PR 5) and are
// committed to the repository. The tests decode them with the current
// decoder, require bit-identical query answers (recorded in
// golden_queries.json at fixture-generation time), and re-encode them
// requiring byte-identical output — proving that storage-engine refactors
// change neither the wire format nor the semantics of restored state.
//
// Regenerate (only when the format version is intentionally bumped) with:
//
//	go test -run TestGoldenSerdeFixtures -update-serde-golden .

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"req/internal/rng"
)

var updateSerdeGolden = flag.Bool("update-serde-golden", false,
	"rewrite testdata/serde fixtures from the current encoder")

const serdeGoldenDir = "testdata/serde"

// goldenPhis is the quantile probe grid recorded for every fixture.
var goldenPhis = []float64{0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// goldenQueries is the recorded query surface of one fixture. Float64
// values are stored as IEEE-754 bit patterns in hex so the comparison is
// exact, never within-epsilon.
type goldenQueries struct {
	Count     uint64   `json:"count"`
	Retained  int      `json:"retained"`
	Quantiles []string `json:"quantiles"` // hex bits (float64) or decimal (uint64)
	Ranks     []uint64 `json:"ranks"`     // at rankProbes drawn from the value domain
}

// fixtureKind distinguishes the decoder used for a fixture.
type fixtureKind int

const (
	kindFullFloat64 fixtureKind = iota
	kindFullUint64
	kindSnapFloat64
	kindSnapUint64
)

type serdeFixture struct {
	name string
	kind fixtureKind
	// build constructs the sketch state and returns the encoded record.
	build func(t testing.TB) []byte
}

// goldenStreamF64 builds the reference float64 sketch: a shuffled stream
// long enough to grow the bound and cascade several levels, then a merge
// with a second sketch so merge-combined schedule states are on the wire.
func goldenStreamF64(t testing.TB, hra bool) *Float64 {
	opts := []Option{WithEpsilon(0.02), WithDelta(0.01), WithSeed(42)}
	if hra {
		opts = append(opts, WithHighRankAccuracy())
	}
	s, err := NewFloat64(opts...)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(777)
	for _, v := range r.Perm(60000) {
		s.Update(float64(v))
	}
	otherOpts := []Option{WithEpsilon(0.02), WithDelta(0.01), WithSeed(43)}
	if hra {
		otherOpts = append(otherOpts, WithHighRankAccuracy())
	}
	o, err := NewFloat64(otherOpts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Perm(7000) {
		o.Update(float64(v) + 0.5)
	}
	if err := s.Merge(o); err != nil {
		t.Fatal(err)
	}
	return s
}

func goldenStreamU64(t testing.TB) *Uint64 {
	s, err := NewUint64(WithK(32), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(555)
	for i := 0; i < 30000; i++ {
		s.Update(r.Uint64() >> 20)
	}
	return s
}

var serdeFixtures = []serdeFixture{
	{name: "full_f64", kind: kindFullFloat64, build: func(t testing.TB) []byte {
		b, err := goldenStreamF64(t, false).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}},
	{name: "full_f64_hra", kind: kindFullFloat64, build: func(t testing.TB) []byte {
		b, err := goldenStreamF64(t, true).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}},
	{name: "full_u64", kind: kindFullUint64, build: func(t testing.TB) []byte {
		b, err := goldenStreamU64(t).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}},
	{name: "snap_f64", kind: kindSnapFloat64, build: func(t testing.TB) []byte {
		b, err := goldenStreamF64(t, false).Snapshot().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}},
	{name: "snap_u64", kind: kindSnapUint64, build: func(t testing.TB) []byte {
		b, err := goldenStreamU64(t).Snapshot().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}},
}

// rankProbesF64 / rankProbesU64 are fixed probe grids inside each fixture's
// value domain.
var rankProbesF64 = []float64{-1, 0, 59, 599, 5999, 29999, 44999, 59999, 70000}
var rankProbesU64 = []uint64{0, 1 << 20, 1 << 30, 1 << 40, 1 << 43, 1 << 44}

// fixtureQueries computes the recorded query surface from a decoded fixture.
func fixtureQueries(t testing.TB, kind fixtureKind, data []byte) goldenQueries {
	var q goldenQueries
	switch kind {
	case kindFullFloat64, kindSnapFloat64:
		var r interface {
			Count() uint64
			ItemsRetained() int
			Quantile(float64) (float64, error)
			Rank(float64) uint64
		}
		if kind == kindFullFloat64 {
			s, err := DecodeFloat64(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			r = s
		} else {
			s, err := UnmarshalSnapshotFloat64(data)
			if err != nil {
				t.Fatalf("decode snapshot: %v", err)
			}
			r = s
		}
		q.Count = r.Count()
		q.Retained = r.ItemsRetained()
		for _, phi := range goldenPhis {
			v, err := r.Quantile(phi)
			if err != nil {
				t.Fatalf("quantile(%v): %v", phi, err)
			}
			q.Quantiles = append(q.Quantiles, fmt.Sprintf("%016x", math.Float64bits(v)))
		}
		for _, y := range rankProbesF64 {
			q.Ranks = append(q.Ranks, r.Rank(y))
		}
	case kindFullUint64, kindSnapUint64:
		var r interface {
			Count() uint64
			ItemsRetained() int
			Quantile(float64) (uint64, error)
			Rank(uint64) uint64
		}
		if kind == kindFullUint64 {
			s, err := DecodeUint64(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			r = s
		} else {
			s, err := UnmarshalSnapshotUint64(data)
			if err != nil {
				t.Fatalf("decode snapshot: %v", err)
			}
			r = s
		}
		q.Count = r.Count()
		q.Retained = r.ItemsRetained()
		for _, phi := range goldenPhis {
			v, err := r.Quantile(phi)
			if err != nil {
				t.Fatalf("quantile(%v): %v", phi, err)
			}
			q.Quantiles = append(q.Quantiles, fmt.Sprintf("%d", v))
		}
		for _, y := range rankProbesU64 {
			q.Ranks = append(q.Ranks, r.Rank(y))
		}
	}
	return q
}

// reencode round-trips a fixture through decode + MarshalBinary.
func reencode(t testing.TB, kind fixtureKind, data []byte) []byte {
	var out []byte
	var err error
	switch kind {
	case kindFullFloat64:
		var s *Float64
		if s, err = DecodeFloat64(data); err == nil {
			out, err = s.MarshalBinary()
		}
	case kindFullUint64:
		var s *Uint64
		if s, err = DecodeUint64(data); err == nil {
			out, err = s.MarshalBinary()
		}
	case kindSnapFloat64:
		var s *SnapshotFloat64
		if s, err = UnmarshalSnapshotFloat64(data); err == nil {
			out, err = s.MarshalBinary()
		}
	case kindSnapUint64:
		var s *SnapshotUint64
		if s, err = UnmarshalSnapshotUint64(data); err == nil {
			out, err = s.MarshalBinary()
		}
	}
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	return out
}

func TestGoldenSerdeFixtures(t *testing.T) {
	if *updateSerdeGolden {
		if err := os.MkdirAll(serdeGoldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		all := map[string]goldenQueries{}
		for _, fx := range serdeFixtures {
			data := fx.build(t)
			if err := os.WriteFile(filepath.Join(serdeGoldenDir, fx.name+".bin"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			all[fx.name] = fixtureQueries(t, fx.kind, data)
		}
		blob, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(serdeGoldenDir, "golden_queries.json"), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("fixtures regenerated")
		return
	}

	blob, err := os.ReadFile(filepath.Join(serdeGoldenDir, "golden_queries.json"))
	if err != nil {
		t.Fatalf("read golden queries (run -update-serde-golden once): %v", err)
	}
	var want map[string]goldenQueries
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, fx := range serdeFixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(serdeGoldenDir, fx.name+".bin"))
			if err != nil {
				t.Fatalf("read fixture: %v", err)
			}
			w, ok := want[fx.name]
			if !ok {
				t.Fatalf("no golden queries recorded for %q", fx.name)
			}
			got := fixtureQueries(t, fx.kind, data)
			if got.Count != w.Count {
				t.Errorf("count = %d, want %d", got.Count, w.Count)
			}
			if got.Retained != w.Retained {
				t.Errorf("retained = %d, want %d", got.Retained, w.Retained)
			}
			for i := range w.Quantiles {
				if i < len(got.Quantiles) && got.Quantiles[i] != w.Quantiles[i] {
					t.Errorf("quantile[%d] (phi=%v) = %s, want %s", i, goldenPhis[i], got.Quantiles[i], w.Quantiles[i])
				}
			}
			for i := range w.Ranks {
				if i < len(got.Ranks) && got.Ranks[i] != w.Ranks[i] {
					t.Errorf("rank[%d] = %d, want %d", i, got.Ranks[i], w.Ranks[i])
				}
			}
			re := reencode(t, fx.kind, data)
			if string(re) != string(data) {
				t.Errorf("re-encode is not byte-identical: %d vs %d bytes", len(re), len(data))
			}
			// The current encoder applied to the same logical stream must
			// still produce the pre-refactor bytes: build the fixture fresh
			// and compare against the committed file.
			fresh := fx.build(t)
			if string(fresh) != string(data) {
				t.Errorf("freshly built fixture differs from committed bytes: %d vs %d bytes", len(fresh), len(data))
			}
		})
	}
}
