package req

import (
	"errors"
	"math"
	"testing"
)

func TestSerdeRoundTrip(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithDelta(0.05), WithSeed(100))
	s.UpdateAll(permStream(1<<16, 101))
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != s.Count() || r.ItemsRetained() != s.ItemsRetained() ||
		r.NumLevels() != s.NumLevels() || r.K() != s.K() {
		t.Fatal("restored sketch differs structurally")
	}
	for y := 0.0; y < float64(1<<16); y += 499 {
		if r.Rank(y) != s.Rank(y) {
			t.Fatalf("rank mismatch at %v", y)
		}
	}
	mn0, _ := s.Min()
	mn1, _ := r.Min()
	if mn0 != mn1 {
		t.Fatal("min mismatch")
	}
}

func TestSerdeResumesIdentically(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(102))
	s.UpdateAll(permStream(100000, 103))
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	extra := permStream(50000, 104)
	s.UpdateAll(extra)
	r.UpdateAll(extra)
	if s.ItemsRetained() != r.ItemsRetained() {
		t.Fatal("resume diverged in structure (RNG state not restored?)")
	}
	for y := 0.0; y < 100000; y += 977 {
		if s.Rank(y) != r.Rank(y) {
			t.Fatalf("resume diverged at %v", y)
		}
	}
}

func TestSerdeEmptySketch(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.1))
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Fatal("restored sketch not empty")
	}
}

func TestSerdeAllModes(t *testing.T) {
	for name, opts := range map[string][]Option{
		"mergeable": {WithEpsilon(0.05), WithDelta(0.1)},
		"theorem2":  {WithTheorem2Mode(), WithEpsilon(0.05), WithDelta(1e-9)},
		"fixedk":    {WithK(64)},
		"hra":       {WithEpsilon(0.05), WithHighRankAccuracy()},
		"paper":     {WithEpsilon(0.1), WithDelta(0.1), WithPaperConstants()},
	} {
		s := mustFloat64(t, append(opts, WithSeed(1))...)
		s.UpdateAll(permStream(50000, 2))
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := DecodeFloat64(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for y := 0.0; y < 50000; y += 1013 {
			if r.Rank(y) != s.Rank(y) {
				t.Fatalf("%s: rank mismatch at %v", name, y)
			}
		}
	}
}

func TestSerdeMergedSketch(t *testing.T) {
	a := mustFloat64(t, WithEpsilon(0.05), WithSeed(105))
	b := mustFloat64(t, WithEpsilon(0.05), WithSeed(106))
	a.UpdateAll(permStream(60000, 107))
	b.UpdateAll(permStream(60000, 108))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != a.Count() {
		t.Fatal("merged snapshot count mismatch")
	}
}

func TestSerdeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"bad magic": append([]byte("NOPE"), make([]byte, 200)...),
		"bad version": func() []byte {
			s := mustFloat64(t)
			b, _ := s.MarshalBinary()
			b[4] = 99
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeFloat64(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestSerdeRejectsTruncations(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(109))
	s.UpdateAll(permStream(30000, 110))
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(blob); cut += 101 {
		if _, err := DecodeFloat64(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSerdeRejectsTrailingBytes(t *testing.T) {
	s := mustFloat64(t)
	s.Update(1)
	blob, _ := s.MarshalBinary()
	if _, err := DecodeFloat64(append(blob, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestSerdeRejectsBitFlips(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.1), WithSeed(111))
	s.UpdateAll(permStream(20000, 112))
	blob, _ := s.MarshalBinary()
	rejected := 0
	for i := 0; i < len(blob); i += 37 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xFF
		if _, err := DecodeFloat64(mut); err != nil {
			rejected++
		}
	}
	// Many flips (counts, n, bound, levels) must be caught by validation;
	// flips inside item payloads legitimately produce different-but-valid
	// sketches, so we only require a meaningful rejection rate.
	if rejected == 0 {
		t.Fatal("no corruption detected at all")
	}
}

func TestSerdeRejectsNaNPayload(t *testing.T) {
	s := mustFloat64(t)
	s.Update(1)
	s.Update(2)
	blob, _ := s.MarshalBinary()
	// Overwrite the last 8 bytes (an item) with a NaN pattern.
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		blob[len(blob)-8+i] = byte(nan >> (8 * i))
	}
	if _, err := DecodeFloat64(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN payload accepted: %v", err)
	}
}

func TestSerdeSizeReasonable(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(113))
	s.UpdateAll(permStream(1<<18, 114))
	blob, _ := s.MarshalBinary()
	// ~8 bytes per retained item plus bounded header/level overhead.
	upper := 8*s.ItemsRetained() + 200 + 16*s.NumLevels()
	if len(blob) > upper {
		t.Fatalf("encoding %d bytes exceeds budget %d", len(blob), upper)
	}
}
