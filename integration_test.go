package req

// Integration tests: full pipelines across modules — generators feeding the
// public API, verified against the exact oracle, through serialization and
// merge boundaries. These complement the per-package unit tests by checking
// the composed behaviour a downstream user sees.

import (
	"math"
	"testing"

	"req/internal/exact"
	"req/internal/rng"
	"req/internal/streams"
)

// checkGuarantee verifies relative error ≤ tol at log-spaced ranks against
// an exact oracle built from the same values.
func checkGuarantee(t *testing.T, name string, s *Float64, vals []float64, tol float64) {
	t.Helper()
	oracle := exact.FromValues(vals)
	n := oracle.N()
	for rank := uint64(1); rank <= n; rank = rank*3 + 1 {
		y := oracle.ItemOfRank(rank)
		truth := float64(oracle.Rank(y))
		est := float64(s.Rank(y))
		rel := math.Abs(est-truth) / truth
		if rel > tol {
			t.Errorf("%s: rank %d (y=%v): est %v truth %v rel %.4f > %v",
				name, rank, y, est, truth, rel, tol)
		}
	}
}

func TestIntegrationAllGeneratorsMeetGuarantee(t *testing.T) {
	const n = 1 << 15
	const eps = 0.05
	for _, g := range streams.All() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			vals := g.Generate(n, rng.New(11))
			s := mustFloat64(t, WithEpsilon(eps), WithDelta(0.01), WithSeed(12))
			s.UpdateAll(vals)
			checkGuarantee(t, g.Name(), s, vals, eps)
		})
	}
}

func TestIntegrationSerializeMidStream(t *testing.T) {
	// Sketch half a stream, serialize/deserialize (as a checkpoint), feed
	// the rest, verify the guarantee over the whole stream.
	const n = 1 << 16
	vals := streams.Latency{}.Generate(n, rng.New(13))
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(14))
	s.UpdateAll(vals[:n/2])
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	restored.UpdateAll(vals[n/2:])
	checkGuarantee(t, "checkpointed", restored, vals, 0.05)
}

func TestIntegrationMergeHeterogeneousShards(t *testing.T) {
	// Shards of wildly different sizes and distributions, merged into one.
	cfg := []Option{WithEpsilon(0.05), WithDelta(0.01)}
	shardSpecs := []struct {
		gen  streams.Generator
		n    int
		seed uint64
	}{
		{streams.Uniform{Lo: 0, Hi: 100}, 50000, 20},
		{streams.Uniform{Lo: 100, Hi: 200}, 500, 21},
		{streams.LogNormal{Mu: 3, Sigma: 1}, 20000, 22},
		{streams.Uniform{Lo: 50, Hi: 150}, 3, 23},
	}
	var all []float64
	global := mustFloat64(t, append(cfg, WithSeed(30))...)
	for i, spec := range shardSpecs {
		vals := spec.gen.Generate(spec.n, rng.New(spec.seed))
		all = append(all, vals...)
		shard := mustFloat64(t, append(cfg, WithSeed(uint64(31+i)))...)
		shard.UpdateAll(vals)
		if err := global.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	if global.Count() != uint64(len(all)) {
		t.Fatalf("merged count %d != %d", global.Count(), len(all))
	}
	checkGuarantee(t, "heterogeneous merge", global, all, 0.05)
}

func TestIntegrationHRAOnTails(t *testing.T) {
	const n = 1 << 16
	vals := streams.Latency{}.Generate(n, rng.New(40))
	s := mustFloat64(t, WithEpsilon(0.01), WithHighRankAccuracy(), WithSeed(41))
	s.UpdateAll(vals)
	oracle := exact.FromValues(vals)
	for _, phi := range []float64{0.99, 0.999, 0.9999} {
		rank := uint64(phi * n)
		y := oracle.ItemOfRank(rank)
		truth := float64(oracle.Rank(y))
		est := float64(s.Rank(y))
		tailMass := float64(n) - truth + 1
		if math.Abs(est-truth)/tailMass > 0.01 {
			t.Errorf("p%v: tail-relative error %.5f", phi*100, math.Abs(est-truth)/tailMass)
		}
	}
}

func TestIntegrationQuantilesMatchOracleOnCDF(t *testing.T) {
	const n = 1 << 15
	vals := streams.Normal{Mu: 50, Sigma: 10}.Generate(n, rng.New(50))
	s := mustFloat64(t, WithEpsilon(0.02), WithSeed(51))
	s.UpdateAll(vals)
	oracle := exact.FromValues(vals)
	splits := []float64{30, 40, 50, 60, 70}
	cdf, err := s.CDF(splits)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range splits {
		truth := float64(oracle.Rank(sp)) / float64(n)
		if math.Abs(cdf[i]-truth) > 0.02*truth+0.002 {
			t.Errorf("CDF(%v) = %v, truth %v", sp, cdf[i], truth)
		}
	}
}

func TestIntegrationLowerBoundDecodeViaPublicAPI(t *testing.T) {
	// The Appendix A decode experiment through the public API end to end.
	r := rng.New(60)
	lb, err := streams.NewLowerBound(0.05, 7, 1<<15, r)
	if err != nil {
		t.Fatal(err)
	}
	vals := lb.Values()
	streams.Arrange(vals, streams.OrderShuffled, r)
	s := mustFloat64(t, WithEpsilon(0.05/3), WithDelta(1e-9), WithSeed(61))
	s.UpdateAll(vals)
	decoded := lb.Decode(s.Rank)
	for i := range decoded {
		if decoded[i] != lb.S[i] {
			t.Fatalf("decode mismatch at %d: %d vs %d", i, decoded[i], lb.S[i])
		}
	}
}

func TestIntegrationWeightedEquivalentDistribution(t *testing.T) {
	// A weighted sketch of a histogram must answer like a unit sketch of
	// the expanded stream.
	hist := map[float64]uint64{}
	r := rng.New(70)
	var expanded []float64
	for i := 0; i < 500; i++ {
		v := math.Floor(r.Float64() * 1000)
		w := uint64(1 + r.Intn(30))
		hist[v] += w
		for j := uint64(0); j < w; j++ {
			expanded = append(expanded, v)
		}
	}
	weighted := mustFloat64(t, WithEpsilon(0.05), WithSeed(71))
	for v, w := range hist {
		if err := weighted.Sketch.UpdateWeighted(v, w); err != nil {
			t.Fatal(err)
		}
	}
	checkGuarantee(t, "weighted-histogram", weighted, expanded, 0.05)
}

func TestIntegrationLongRunningMixedWorkload(t *testing.T) {
	// Interleave updates, merges, serialization and queries as a long-lived
	// service would, checking consistency at every phase boundary.
	if testing.Short() {
		t.Skip("long mixed workload")
	}
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(80))
	r := rng.New(81)
	var mirror []float64

	phase := func(k int) {
		vals := streams.Uniform{Lo: 0, Hi: 1000}.Generate(20000, r)
		s.UpdateAll(vals)
		mirror = append(mirror, vals...)
	}
	phase(0)
	// Merge in a shard.
	shard := mustFloat64(t, WithEpsilon(0.05), WithSeed(82))
	shardVals := streams.Uniform{Lo: 500, Hi: 1500}.Generate(30000, r)
	shard.UpdateAll(shardVals)
	if err := s.Merge(shard); err != nil {
		t.Fatal(err)
	}
	mirror = append(mirror, shardVals...)
	// Checkpoint.
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	s = s2
	phase(1)
	phase(2)
	checkGuarantee(t, "mixed workload", s, mirror, 0.05)
}
