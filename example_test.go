package req_test

import (
	"fmt"

	"req"
)

// The most common usage: stream values, query quantiles.
func ExampleNewFloat64() {
	s, _ := req.NewFloat64(req.WithEpsilon(0.01), req.WithSeed(1))
	for i := 1; i <= 100000; i++ {
		s.Update(float64(i))
	}
	median, _ := s.Quantile(0.5)
	// The estimate carries ε=1% relative rank error; assert the guarantee
	// rather than a seed-specific value.
	fmt.Printf("n=%d median within 1%%: %v\n", s.Count(),
		median > 49000 && median < 51000)
	// Output: n=100000 median within 1%: true
}

// Rank queries estimate how many items are ≤ y.
func ExampleSketch_Rank() {
	s, _ := req.NewFloat64(req.WithEpsilon(0.05), req.WithSeed(1))
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	fmt.Println(s.Rank(499))
	// Output: 500
}

// Any totally ordered type works via a custom less function.
func ExampleNew() {
	type request struct {
		millis float64
		path   string
	}
	s, _ := req.New(func(a, b request) bool { return a.millis < b.millis },
		req.WithEpsilon(0.05), req.WithSeed(1))
	s.Update(request{12.5, "/health"})
	s.Update(request{250.0, "/search"})
	s.Update(request{40.1, "/home"})
	slowest, _ := s.Quantile(1)
	fmt.Println(slowest.path)
	// Output: /search
}

// Sketches merge freely; the combined sketch covers both streams.
func ExampleSketch_Merge() {
	a, _ := req.NewFloat64(req.WithEpsilon(0.05), req.WithSeed(1))
	b, _ := req.NewFloat64(req.WithEpsilon(0.05), req.WithSeed(2))
	for i := 0; i < 500; i++ {
		a.Update(float64(i))
		b.Update(float64(500 + i))
	}
	_ = a.Merge(b)
	fmt.Println(a.Count(), a.Rank(999))
	// Output: 1000 1000
}

// Serialization round-trips the full sketch state.
func ExampleFloat64_MarshalBinary() {
	s, _ := req.NewFloat64(req.WithEpsilon(0.05), req.WithSeed(1))
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	blob, _ := s.MarshalBinary()
	restored, _ := req.DecodeFloat64(blob)
	fmt.Println(restored.Count() == s.Count(), restored.Rank(499) == s.Rank(499))
	// Output: true true
}

// Weighted updates fold repeated values into one call.
func ExampleSketch_UpdateWeighted() {
	s, _ := req.NewFloat64(req.WithEpsilon(0.05), req.WithSeed(1))
	_ = s.Sketch.UpdateWeighted(1.0, 900) // 900 fast requests
	_ = s.Sketch.UpdateWeighted(9.0, 100) // 100 slow requests
	p95, _ := s.Quantile(0.95)
	fmt.Printf("n=%d p95=%.0f\n", s.Count(), p95)
	// Output: n=1000 p95=9
}
