package req

import (
	"sync"
	"testing"
)

// Tests for the batch query surface (RankBatch / NormalizedRankBatch /
// QuantilesInto / CDFInto / PMFInto) across the public wrapper types.

func TestFloat64BatchQueriesMatchSingle(t *testing.T) {
	s, err := NewFloat64(WithEpsilon(0.05), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch(permStream(40000, 22))
	probes := permStream(300, 23)
	ranks := s.RankBatch(nil, probes)
	nranks := s.NormalizedRankBatch(nil, probes)
	for i, y := range probes {
		if want := s.Rank(y); ranks[i] != want {
			t.Fatalf("RankBatch[%d] = %d, single %d", i, ranks[i], want)
		}
		if want := s.NormalizedRank(y); nranks[i] != want {
			t.Fatalf("NormalizedRankBatch[%d] = %v, single %v", i, nranks[i], want)
		}
	}
	phis := []float64{0.99, 0.5, 0.01, 1, 0}
	qs, err := s.QuantilesInto(nil, phis)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range phis {
		want, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if qs[i] != want {
			t.Fatalf("QuantilesInto(%v) = %v, single %v", phi, qs[i], want)
		}
	}
	// Destination reuse round-trips.
	qs2, err := s.QuantilesInto(qs, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs2) != 2 {
		t.Fatalf("reused dst length %d", len(qs2))
	}
	splits := []float64{1000, 20000, 39000}
	cdf, err := s.CDFInto(nil, splits)
	if err != nil {
		t.Fatal(err)
	}
	cdfOld, err := s.CDF(splits)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cdf {
		if cdf[i] != cdfOld[i] {
			t.Fatalf("CDFInto[%d] = %v, CDF %v", i, cdf[i], cdfOld[i])
		}
	}
	pmf, err := s.PMFInto(nil, splits)
	if err != nil {
		t.Fatal(err)
	}
	pmfOld, err := s.PMF(splits)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pmf {
		if pmf[i] != pmfOld[i] {
			t.Fatalf("PMFInto[%d] = %v, PMF %v", i, pmf[i], pmfOld[i])
		}
	}
}

func TestUint64BatchQueries(t *testing.T) {
	s, err := NewUint64(WithEpsilon(0.05), WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 30000)
	for i := range vals {
		vals[i] = uint64(i * 3)
	}
	s.UpdateBatch(vals)
	probes := []uint64{0, 1, 44999, 45000, 90000}
	ranks := s.RankBatch(nil, probes)
	for i, y := range probes {
		if want := s.Rank(y); ranks[i] != want {
			t.Fatalf("RankBatch[%d] = %d, single %d", i, ranks[i], want)
		}
	}
}

func TestShardedBatchQueries(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.05), WithSeed(41), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch(permStream(30000, 42))
	probes := permStream(200, 43)
	ranks := s.RankBatch(nil, probes)
	nranks := s.NormalizedRankBatch(nil, probes)
	for i, y := range probes {
		if want := s.Rank(y); ranks[i] != want {
			t.Fatalf("sharded RankBatch[%d] = %d, single %d", i, ranks[i], want)
		}
		if want := s.NormalizedRank(y); nranks[i] != want {
			t.Fatalf("sharded NormalizedRankBatch[%d] = %v, single %v", i, nranks[i], want)
		}
	}
	qs, err := s.QuantilesInto(nil, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range []float64{0.1, 0.5, 0.9} {
		want, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if qs[i] != want {
			t.Fatalf("sharded QuantilesInto(%v) = %v, single %v", phi, qs[i], want)
		}
	}
	if _, err := s.CDFInto(nil, []float64{100, 200}); err != nil {
		t.Fatal(err)
	}
	pmf, err := s.PMFInto(nil, []float64{100, 20000})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range pmf {
		total += p
	}
	if len(pmf) != 3 || total < 0.999 || total > 1.001 {
		t.Fatalf("sharded PMFInto = %v", pmf)
	}
}

func TestShardedBatchQueriesUnderConcurrentWrites(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.1), WithSeed(51), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch(permStream(5000, 52))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals := permStream(1000, 53)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Update(vals[i%len(vals)])
			}
		}
	}()
	probes := permStream(64, 54)
	sorted := append([]float64(nil), probes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for q := 0; q < 50; q++ {
		// Every batch is answered from one point-in-time snapshot, so ranks
		// over sorted probes must be monotone even while writes land.
		rs := s.RankBatch(nil, sorted)
		for i := 1; i < len(rs); i++ {
			if rs[i] < rs[i-1] {
				t.Fatalf("batch ranks from one snapshot not monotone: %d < %d", rs[i], rs[i-1])
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentFloat64BatchQueries(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	c.UpdateBatch(permStream(20000, 62))
	probes := permStream(100, 63)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dstR := make([]uint64, 0, len(probes))
			dstN := make([]float64, 0, len(probes))
			for i := 0; i < 25; i++ {
				dstR = c.RankBatch(dstR, probes)
				dstN = c.NormalizedRankBatch(dstN, probes)
				if _, err := c.QuantilesInto(nil, []float64{0.5, 0.99}); err != nil {
					panic(err)
				}
				if w == 0 {
					c.Update(float64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	ranks := c.RankBatch(nil, probes)
	for i, y := range probes {
		if want := c.Rank(y); ranks[i] != want {
			t.Fatalf("concurrent RankBatch[%d] = %d, single %d", i, ranks[i], want)
		}
	}
	if _, err := c.CDFInto(nil, []float64{5, 500, 15000}); err != nil {
		t.Fatal(err)
	}
	pmf, err := c.PMFInto(nil, []float64{500})
	if err != nil || len(pmf) != 2 {
		t.Fatalf("concurrent PMFInto = %v, %v", pmf, err)
	}
}
