package req

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"
)

func TestConcurrentBasic(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Update(1)
	c.UpdateAll([]float64{2, 3})
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
	if c.Rank(2) != 2 {
		t.Fatalf("rank = %d", c.Rank(2))
	}
	q, err := c.Quantile(0.5)
	if err != nil || q != 2 {
		t.Fatalf("quantile = %v, %v", q, err)
	}
	mn, _ := c.Min()
	mx, _ := c.Max()
	if mn != 1 || mx != 3 {
		t.Fatal("min/max wrong")
	}
	if c.ItemsRetained() != 3 {
		t.Fatalf("items = %d", c.ItemsRetained())
	}
}

func TestConcurrentParallelUpdatesAndReads(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 20000
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Update(float64(base*perWriter + i))
			}
		}(wi)
	}
	// Concurrent readers.
	for ri := 0; ri < 4; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = c.Rank(float64(i * 37))
				_ = c.Count()
			}
		}()
	}
	wg.Wait()
	if c.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", c.Count(), writers*perWriter)
	}
	// Accuracy survives concurrent construction (values were a permutation
	// of 0..n-1 split across writers).
	n := float64(writers * perWriter)
	got := float64(c.Rank(n / 2))
	if math.Abs(got-n/2-1)/(n/2) > 0.05 {
		t.Fatalf("median rank after concurrent updates: %v", got)
	}
}

func TestConcurrentQuantilesAndMerge(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	other := mustFloat64(t, WithEpsilon(0.05), WithSeed(4))
	for i := 0; i < 10000; i++ {
		c.Update(float64(i))
		other.Update(float64(10000 + i))
	}
	if err := c.Merge(other); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 20000 {
		t.Fatalf("merged count = %d", c.Count())
	}
	qs, err := c.Quantiles([]float64{0.25, 0.75})
	if err != nil || len(qs) != 2 {
		t.Fatalf("quantiles: %v %v", qs, err)
	}
	if qs[0] > qs[1] {
		t.Fatal("quantiles not ordered")
	}
}

func TestConcurrentSnapshot(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.1), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		c.Update(float64(i))
	}
	snap := c.Snapshot()
	if snap.Count() != 5000 {
		t.Fatalf("snapshot count = %d", snap.Count())
	}
	// Snapshot is independent.
	c.Update(99999)
	if snap.Count() != 5000 {
		t.Fatal("snapshot aliases live sketch")
	}
	if mx, _ := snap.Max(); mx == 99999 {
		t.Fatal("snapshot observed a post-capture write")
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFloat64(blob); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQuantileUsesReadLock is the regression test for the old
// behavior where Quantile/Quantiles took the exclusive lock: with the view
// frozen, a query must complete while another reader holds the read lock.
// Under the old code this deadlocks (the exclusive lock waits for the held
// read lock), so the timeout failing means queries serialize readers again.
func TestConcurrentQuantileUsesReadLock(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		c.Update(float64(i))
	}
	// Freeze the sorted view; from here queries are pure reads.
	if _, err := c.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	done := make(chan error, 1)
	go func() {
		if _, err := c.Quantile(0.5); err != nil {
			done <- err
			return
		}
		_, err := c.Quantiles([]float64{0.1, 0.9})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Quantile blocked while another goroutine held the read lock; queries must not take the exclusive lock")
	}
}

// TestConcurrentSnapshotMatchesSerde pins the equivalence the Snapshot
// contract promises: the immutable snapshot answers bit-identically to a
// full MarshalBinary/DecodeFloat64 round-trip of the wrapped sketch, and
// the snapshot's own coreset encoding round-trips to the same answers.
func TestConcurrentSnapshotMatchesSerde(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		c.Update(float64(i % 1000))
	}
	snap := c.Snapshot()
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	roundTripped, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0.0; q <= 1000; q += 17 {
		if snap.Rank(q) != roundTripped.Rank(q) {
			t.Fatalf("Rank(%v): snapshot %d, serde round-trip %d", q, snap.Rank(q), roundTripped.Rank(q))
		}
	}
	for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.999, 1} {
		a, errA := snap.Quantile(phi)
		b, errB := roundTripped.Quantile(phi)
		if errA != nil || errB != nil || a != b {
			t.Fatalf("Quantile(%v): snapshot %v/%v, round-trip %v/%v", phi, a, errA, b, errB)
		}
	}
	// The snapshot's coreset encoding re-encodes bit-identically.
	snapBlob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalSnapshotFloat64(snapBlob)
	if err != nil {
		t.Fatal(err)
	}
	snapBlob2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBlob, snapBlob2) {
		t.Fatal("snapshot encoding does not round-trip bit-identically")
	}
}

func TestConcurrentRejectsBadOptions(t *testing.T) {
	if _, err := NewConcurrentFloat64(WithEpsilon(7)); err == nil {
		t.Fatal("bad option accepted")
	}
}
