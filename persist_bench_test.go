package req

import (
	"os"
	"path/filepath"
	"testing"

	"req/internal/snapstore"
)

// Persistence benchmarks (BENCH_pr7.json): save throughput and, the number
// the zero-copy design exists for, open-to-first-quantile latency at each
// verification level. The open benches re-open the same generation every
// iteration, so after the first iteration the file is page-cache hot —
// which is the restart scenario the format targets (warm standby, rolling
// restart), and the honest way to isolate format cost from disk speed.

func benchSnapshotDir(b *testing.B, n int) string {
	b.Helper()
	s, err := NewFloat64(WithEpsilon(0.01), WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	// Same value distribution as the in-heap benches (benchValues), so the
	// mapped-vs-heap comparison sees identical coreset shapes.
	s.UpdateAll(benchValues(n, 2))
	dir := b.TempDir()
	if _, err := s.SaveSnapshot(dir); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkSaveSnapshotREQ measures the full durable save: payload build,
// temp write, fsync, rename, fsync(dir), prune.
func BenchmarkSaveSnapshotREQ(b *testing.B) {
	s, err := NewFloat64(WithEpsilon(0.01), WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<20; i++ {
		s.Update(float64(i%9973) * 1.5)
	}
	snap := s.Snapshot()
	dir := b.TempDir()
	var bytesPerSave int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := snap.SaveSnapshot(dir)
		if err != nil {
			b.Fatal(err)
		}
		if bytesPerSave == 0 {
			info, err := os.Stat(filepath.Join(dir, snapstore.GenName(gen)))
			if err != nil {
				b.Fatal(err)
			}
			bytesPerSave = info.Size()
		}
	}
	b.SetBytes(bytesPerSave)
}

// BenchmarkOpenSnapshotREQ measures open-to-first-quantile at each
// verification level, for a small and a large coreset. VerifyNone is the
// O(1) path: its time must not scale with the coreset.
func BenchmarkOpenSnapshotREQ(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"n=100k", 100_000}, {"n=4M", 4_000_000}} {
		dir := benchSnapshotDir(b, size.n)
		for _, lvl := range []struct {
			name string
			mode VerifyMode
		}{{"checksum", VerifyChecksum}, {"full", VerifyFull}, {"none", VerifyNone}} {
			b.Run(size.name+"/verify="+lvl.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := OpenSnapshotFloat64(dir, WithVerify(lvl.mode))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := m.Quantile(0.99); err != nil {
						b.Fatal(err)
					}
					m.Close()
				}
			})
		}
	}
}

// BenchmarkMappedQueryREQ pins the steady-state query cost on a mapped
// snapshot against the in-heap snapshot baseline (BenchmarkSnapshotREQ/query):
// same ingest distribution, same varying-probe pattern, so the two numbers
// differ only by the storage backing. A fixed probe would let the branch
// predictor memorize one descent path and overstate the mapped path's speed.
func BenchmarkMappedQueryREQ(b *testing.B) {
	dir := benchSnapshotDir(b, 1<<20)
	m, err := OpenSnapshotFloat64(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	qs := benchValues(1024, 3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Rank(qs[i&1023])
	}
	_ = sink
}
