package req

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
)

// probeGrid returns probes spanning [0, hi] including off-grid values.
func probeGrid(hi float64) []float64 {
	ps := make([]float64, 0, 70)
	for i := 0; i <= 64; i++ {
		ps = append(ps, hi*float64(i)/64)
	}
	ps = append(ps, -1, hi+1, hi/3+0.5)
	return ps
}

// assertReaderEquiv checks that two Readers answer the full query surface
// identically on the probe grid.
func assertReaderEquiv(t *testing.T, name string, a, b Reader[float64], probes []float64) {
	t.Helper()
	if a.Count() != b.Count() || a.Empty() != b.Empty() || a.ItemsRetained() != b.ItemsRetained() {
		t.Fatalf("%s: count/empty/retained mismatch: %d/%v/%d vs %d/%v/%d", name,
			a.Count(), a.Empty(), a.ItemsRetained(), b.Count(), b.Empty(), b.ItemsRetained())
	}
	amn, aok := a.Min()
	bmn, bok := b.Min()
	amx, _ := a.Max()
	bmx, _ := b.Max()
	if amn != bmn || amx != bmx || aok != bok {
		t.Fatalf("%s: min/max mismatch", name)
	}
	for _, p := range probes {
		if a.Rank(p) != b.Rank(p) || a.RankExclusive(p) != b.RankExclusive(p) ||
			a.NormalizedRank(p) != b.NormalizedRank(p) {
			t.Fatalf("%s: rank mismatch at %v: %d/%d/%v vs %d/%d/%v", name, p,
				a.Rank(p), a.RankExclusive(p), a.NormalizedRank(p),
				b.Rank(p), b.RankExclusive(p), b.NormalizedRank(p))
		}
	}
	ra := a.RankBatch(nil, probes)
	rb := b.RankBatch(nil, probes)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: RankBatch mismatch at %d", name, i)
		}
	}
	if a.Empty() {
		return
	}
	phis := []float64{0, 0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	qa, errA := a.Quantiles(phis)
	qb, errB := b.Quantiles(phis)
	if errA != nil || errB != nil {
		t.Fatalf("%s: quantiles errs %v %v", name, errA, errB)
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("%s: quantile(%v) %v vs %v", name, phis[i], qa[i], qb[i])
		}
	}
	splits := probes[:65] // ascending prefix of the grid
	ca, errA := a.CDF(splits)
	cb, errB := b.CDF(splits)
	if errA != nil || errB != nil {
		t.Fatalf("%s: cdf errs %v %v", name, errA, errB)
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("%s: cdf[%d] %v vs %v", name, i, ca[i], cb[i])
		}
	}
	pa, _ := a.PMF(splits)
	pb, _ := b.PMF(splits)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: pmf[%d] %v vs %v", name, i, pa[i], pb[i])
		}
	}
}

// TestSnapshotMatchesLiveAcrossLifecycles is the equivalence backbone for
// the Snapshot contract: at several points of a sketch's life — plain
// stream, after a merge, after stream-length growth, after a serde
// round-trip — the captured Snapshot answers every query exactly as the
// live sketch does at capture time.
func TestSnapshotMatchesLiveAcrossLifecycles(t *testing.T) {
	probes := probeGrid(120000)
	stages := []struct {
		name  string
		build func(t *testing.T) *Float64
	}{
		{"stream", func(t *testing.T) *Float64 {
			s := mustFloat64(t, WithEpsilon(0.04), WithSeed(11))
			for i := 0; i < 60000; i++ {
				s.Update(float64((i * 31) % 60000))
			}
			return s
		}},
		{"merged", func(t *testing.T) *Float64 {
			a := mustFloat64(t, WithEpsilon(0.04), WithSeed(12))
			b := mustFloat64(t, WithEpsilon(0.04), WithSeed(13))
			for i := 0; i < 30000; i++ {
				a.Update(float64(i))
				b.Update(float64(60000 - i))
			}
			if err := a.Merge(b); err != nil {
				t.Fatal(err)
			}
			return a
		}},
		{"grown", func(t *testing.T) *Float64 {
			s := mustFloat64(t, WithEpsilon(0.04), WithSeed(14), WithKnownN(100))
			for i := 0; i < 120000; i++ {
				s.Update(float64(i % 997))
			}
			return s
		}},
		{"serde", func(t *testing.T) *Float64 {
			s := mustFloat64(t, WithEpsilon(0.04), WithSeed(15))
			for i := 0; i < 40000; i++ {
				s.Update(math.Sqrt(float64(i)) * 300)
			}
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			r, err := DecodeFloat64(blob)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"hra", func(t *testing.T) *Float64 {
			s := mustFloat64(t, WithEpsilon(0.04), WithSeed(16), WithHighRankAccuracy())
			for i := 0; i < 50000; i++ {
				s.Update(float64((i * 17) % 50000))
			}
			return s
		}},
		{"empty", func(t *testing.T) *Float64 {
			return mustFloat64(t, WithEpsilon(0.04))
		}},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			s := st.build(t)
			snap := s.Snapshot()
			assertReaderEquiv(t, st.name, s, snap, probes)

			// Snapshot serde round-trips to bit-identical answers and bytes.
			blob, err := snap.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := UnmarshalSnapshotFloat64(blob)
			if err != nil {
				t.Fatal(err)
			}
			assertReaderEquiv(t, st.name+"/serde", snap, restored, probes)
			blob2, err := restored.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("snapshot encoding not canonical")
			}

			// Mutating the source must not move the snapshot.
			s.Update(1e12)
			if snap.Rank(2e12) != restored.Rank(2e12) {
				t.Fatal("snapshot observed post-capture write")
			}
		})
	}
}

// TestSnapshotUint64 covers the uint64 instantiation end to end.
func TestSnapshotUint64(t *testing.T) {
	s, err := NewUint64(WithEpsilon(0.05), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30000; i++ {
		s.Update(i * 13 % 30011)
	}
	snap := s.Snapshot()
	if snap.Count() != s.Count() || snap.Rank(15000) != s.Rank(15000) {
		t.Fatal("uint64 snapshot disagrees with live sketch")
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalSnapshotUint64(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []uint64{0, 1, 14999, 30010, 50000} {
		if restored.Rank(p) != snap.Rank(p) {
			t.Fatalf("uint64 snapshot serde mismatch at %d", p)
		}
	}
	// Cross-type decoding is rejected.
	if _, err := UnmarshalSnapshotFloat64(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("float64 decoder accepted uint64 snapshot: %v", err)
	}
}

// TestSnapshotRecordKindsRejected pins the format split: full-sketch
// decoders reject snapshot records and vice versa, both with ErrCorrupt.
func TestSnapshotRecordKindsRejected(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.1), WithSeed(4))
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	snapBlob, err := s.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sketchBlob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFloat64(snapBlob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeFloat64 accepted a snapshot record: %v", err)
	}
	if _, err := UnmarshalSnapshotFloat64(sketchBlob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("UnmarshalSnapshotFloat64 accepted a full sketch record: %v", err)
	}
}

// TestSnapshotGenericItemsDontSerialize: snapshot serialization is only
// defined for the float64/uint64 instantiations.
func TestSnapshotGenericItemsDontSerialize(t *testing.T) {
	type pair struct{ a, b int }
	s, err := New(func(x, y pair) bool { return x.a < y.a })
	if err != nil {
		t.Fatal(err)
	}
	s.Update(pair{1, 2})
	if _, err := s.Snapshot().MarshalBinary(); err == nil {
		t.Fatal("generic snapshot serialized")
	}
}

// TestSnapshotSafeUnderConcurrentWrites is the -race proof of the headline
// contract: snapshots taken from every container stay queryable, and keep
// answering identically, while the source ingests from multiple goroutines.
func TestSnapshotSafeUnderConcurrentWrites(t *testing.T) {
	run := func(t *testing.T, snap *SnapshotFloat64, write func(stop <-chan struct{})) {
		t.Helper()
		want := snap.Rank(500)
		wantQ, err := snap.Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); write(stop) }()
		var rwg sync.WaitGroup
		for g := 0; g < 4; g++ {
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				dst := make([]uint64, 0, 3)
				for i := 0; i < 5000; i++ {
					if snap.Rank(500) != want {
						panic("snapshot rank moved under concurrent writes")
					}
					if q, err := snap.Quantile(0.9); err != nil || q != wantQ {
						panic("snapshot quantile moved under concurrent writes")
					}
					dst = snap.RankBatch(dst, []float64{1, 500, 1e9})
					for range snap.All() {
						break
					}
				}
			}()
		}
		rwg.Wait()
		close(stop)
		wg.Wait()
	}

	t.Run("sketch", func(t *testing.T) {
		s := mustFloat64(t, WithEpsilon(0.05), WithSeed(21))
		for i := 0; i < 20000; i++ {
			s.Update(float64(i % 1000))
		}
		snap := s.Snapshot()
		// Plain sketches are single-writer: one goroutine keeps writing.
		run(t, snap, func(stop <-chan struct{}) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					s.Update(float64(i))
				}
			}
		})
	})
	t.Run("concurrent", func(t *testing.T) {
		c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(22))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			c.Update(float64(i % 1000))
		}
		snap := c.Snapshot()
		run(t, snap, func(stop <-chan struct{}) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Update(float64(i))
				}
			}
		})
	})
	t.Run("sharded", func(t *testing.T) {
		s, err := NewShardedFloat64(WithEpsilon(0.05), WithSeed(23), WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			s.Update(float64(i % 1000))
		}
		snap := s.Snapshot()
		var wwg sync.WaitGroup
		run(t, snap, func(stop <-chan struct{}) {
			// Multiple writers plus live queries forcing epoch rebuilds.
			for w := 0; w < 3; w++ {
				wwg.Add(1)
				go func() {
					defer wwg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
							s.Update(float64(i))
							if i%64 == 0 {
								_, _ = s.Quantile(0.5)
							}
						}
					}
				}()
			}
			<-stop
			wwg.Wait()
		})
	})
}

// TestAllIteratorMatchesRetained pins All ≡ Retained (order, items,
// weights, totals) and early-break behaviour.
func TestAllIteratorMatchesRetained(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(31))
	for i := 0; i < 50000; i++ {
		s.Update(float64((i * 613) % 50021))
	}
	coreset := s.Retained()
	if len(coreset) != s.ItemsRetained() {
		t.Fatalf("Retained length %d != ItemsRetained %d", len(coreset), s.ItemsRetained())
	}
	i := 0
	var total uint64
	for item, w := range s.All() {
		if coreset[i].Item != item || coreset[i].Weight != w {
			t.Fatalf("All diverges from Retained at %d: (%v,%d) vs (%v,%d)",
				i, item, w, coreset[i].Item, coreset[i].Weight)
		}
		total += w
		i++
	}
	if i != len(coreset) {
		t.Fatalf("All yielded %d pairs, Retained %d", i, len(coreset))
	}
	if total != s.Count() {
		t.Fatalf("All weights sum to %d, want %d", total, s.Count())
	}
	// Early break stops the iteration cleanly.
	seen := 0
	for range s.All() {
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("early break yielded %d", seen)
	}

	// The snapshot's iterator agrees with the live sketch's.
	snap := s.Snapshot()
	j := 0
	for item, w := range snap.All() {
		if coreset[j].Item != item || coreset[j].Weight != w {
			t.Fatalf("snapshot All diverges at %d", j)
		}
		j++
	}
	if j != len(coreset) {
		t.Fatal("snapshot All truncated")
	}
}

// TestAllOnWrappers exercises the iterator on the concurrent containers.
func TestAllOnWrappers(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.1), WithSeed(32))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedFloat64(WithEpsilon(0.1), WithSeed(33), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		c.Update(float64(i))
		sh.Update(float64(i))
	}
	for name, r := range map[string]Reader[float64]{"concurrent": c, "sharded": sh} {
		var total uint64
		prev := math.Inf(-1)
		for item, w := range r.All() {
			if item < prev {
				t.Fatalf("%s: All not ascending", name)
			}
			prev = item
			total += w
		}
		if total != r.Count() {
			t.Fatalf("%s: All weights sum %d != count %d", name, total, r.Count())
		}
	}
}

// TestShardedSnapshotSharesEpoch pins the no-per-call-clone contract and
// that the published reader is the same object queries are answered from.
func TestShardedSnapshotSharesEpoch(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.1), WithSeed(41), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
	}
	a := s.Snapshot()
	b := s.Snapshot()
	if a != b {
		t.Fatal("Snapshot allocated a new epoch without writes")
	}
	if got, want := s.Rank(5000), a.Rank(5000); got != want {
		t.Fatalf("live query %d disagrees with published snapshot %d", got, want)
	}
}

// TestConcurrentFloat64ReaderGaps covers the methods PR 4 added to the
// mutex wrapper so it satisfies Reader.
func TestConcurrentFloat64ReaderGaps(t *testing.T) {
	c, err := NewConcurrentFloat64(WithEpsilon(0.05), WithSeed(51))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Empty() {
		t.Fatal("new wrapper not empty")
	}
	for i := 1; i <= 1000; i++ {
		c.Update(float64(i))
	}
	if c.Empty() {
		t.Fatal("wrapper empty after updates")
	}
	if got := c.RankExclusive(1); got != 0 {
		t.Fatalf("RankExclusive(min) = %d", got)
	}
	if nr := c.NormalizedRank(1000); nr != 1 {
		t.Fatalf("NormalizedRank(max) = %v", nr)
	}
	cdf, err := c.CDF([]float64{250, 500, 750})
	if err != nil || len(cdf) != 4 || cdf[3] != 1 {
		t.Fatalf("CDF: %v %v", cdf, err)
	}
	pmf, err := c.PMF([]float64{250, 500, 750})
	if err != nil || len(pmf) != 4 {
		t.Fatalf("PMF: %v %v", pmf, err)
	}
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
}
