package req

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestShardedBasic(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.05), WithSeed(1), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", s.NumShards())
	}
	if !s.Empty() {
		t.Fatal("new sketch not empty")
	}
	s.Update(1)
	s.UpdateAll([]float64{2, 3})
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Rank(2) != 2 {
		t.Fatalf("rank = %d", s.Rank(2))
	}
	q, err := s.Quantile(0.5)
	if err != nil || q != 2 {
		t.Fatalf("quantile = %v, %v", q, err)
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn != 1 || mx != 3 {
		t.Fatal("min/max wrong")
	}
	if s.ItemsRetained() != 3 {
		t.Fatalf("items = %d", s.ItemsRetained())
	}
}

func TestShardedShardCountRounding(t *testing.T) {
	s, err := NewShardedFloat64(WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 {
		t.Fatalf("shards = %d, want next power of two 4", s.NumShards())
	}
	auto, err := NewShardedFloat64()
	if err != nil {
		t.Fatal(err)
	}
	if n := auto.NumShards(); n < 1 || n&(n-1) != 0 {
		t.Fatalf("automatic shard count %d is not a positive power of two", n)
	}
}

func TestShardedRejectsBadOptions(t *testing.T) {
	if _, err := NewShardedFloat64(WithEpsilon(7)); err == nil {
		t.Fatal("bad epsilon accepted")
	}
	if _, err := NewShardedFloat64(WithShards(-1)); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestShardedConcurrentIngestAccuracy is the -race workout for the sharded
// subsystem: concurrent writers, concurrent readers querying mid-ingest,
// and periodic merges of externally built plain sketches. The combined
// input is a partition of 0..n-1, so exact ranks are known and the
// relative rank error after the final shard merge must stay within the
// configured ε.
func TestShardedConcurrentIngestAccuracy(t *testing.T) {
	const (
		eps       = 0.05
		writers   = 8
		mergers   = 2
		perBlock  = 20000
		numBlocks = writers + mergers
	)
	s, err := NewShardedFloat64(WithEpsilon(eps), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Writers stream disjoint blocks of the permutation.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perBlock; i++ {
				s.Update(float64(base*perBlock + i))
			}
		}(w)
	}
	// Mergers sketch their blocks privately and merge them in, as a remote
	// shard would after a network hop.
	for m := 0; m < mergers; m++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			sk, err := NewFloat64(WithEpsilon(eps), WithSeed(uint64(100+base)))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perBlock; i++ {
				sk.Update(float64(base*perBlock + i))
			}
			if err := s.Merge(sk); err != nil {
				t.Error(err)
			}
		}(writers + m)
	}
	// Readers query while ingestion is in flight; answers must be sane
	// (ordered quantiles, monotone counts) even if approximate.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastCount uint64
			for i := 0; i < 400; i++ {
				n := s.Count()
				if n < lastCount {
					t.Errorf("count went backwards: %d after %d", n, lastCount)
					return
				}
				lastCount = n
				_ = s.Rank(float64(i * 97))
				qs, err := s.Quantiles([]float64{0.25, 0.5, 0.75})
				if err == nil && (qs[0] > qs[1] || qs[1] > qs[2]) {
					t.Errorf("quantiles out of order: %v", qs)
					return
				}
			}
		}()
	}
	wg.Wait()

	n := uint64(numBlocks * perBlock)
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	// Values were a permutation of 0..n-1: the true rank of value v is v+1.
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.95} {
		rank := float64(n) * frac
		got := float64(s.Rank(rank - 1))
		if rel := math.Abs(got-rank) / rank; rel > eps {
			t.Errorf("rank error at %.0f%%: |%v - %v|/%v = %v > eps %v",
				100*frac, got, rank, rank, rel, eps)
		}
	}
}

func TestShardedSnapshotIndependent(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.1), WithSeed(5), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		s.Update(float64(i))
	}
	snap := s.Snapshot()
	if snap.Count() != 5000 {
		t.Fatalf("snapshot count = %d", snap.Count())
	}
	// Between writes, Snapshot hands out the published epoch snapshot: no
	// per-call clone.
	if again := s.Snapshot(); again != snap {
		t.Fatal("Snapshot cloned the published epoch snapshot")
	}
	s.Update(99999)
	if snap.Count() != 5000 {
		t.Fatal("snapshot aliases live sketch")
	}
	if mx, _ := snap.Max(); mx == 99999 {
		t.Fatal("snapshot observed a post-capture write")
	}
	// The write started a new epoch: the next snapshot sees it, the old one
	// stays frozen.
	snap2 := s.Snapshot()
	if snap2 == snap || snap2.Count() != 5001 {
		t.Fatalf("post-write snapshot: same=%v count=%d", snap2 == snap, snap2.Count())
	}
}

func TestShardedMarshalRoundTrip(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.05), WithSeed(9), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		s.Update(float64(i))
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Count() != s.Count() {
		t.Fatalf("decoded count = %d, want %d", dec.Count(), s.Count())
	}
	blob2, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding differs")
	}
}

func TestShardedFloat64IgnoresNaN(t *testing.T) {
	s, err := NewShardedFloat64(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Update(math.NaN())
	s.UpdateAll([]float64{1, math.NaN(), 2, math.NaN(), 3})
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3 (NaNs must be dropped)", s.Count())
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn != 1 || mx != 3 {
		t.Fatalf("min/max = %v/%v", mn, mx)
	}
}

func TestShardedMergeIncompatible(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.01))
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewFloat64(WithEpsilon(0.1))
	if err != nil {
		t.Fatal(err)
	}
	other.Update(1)
	if err := s.Merge(other); err == nil {
		t.Fatal("merge of incompatible configs accepted")
	}
	if err := s.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestShardedReset(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.05), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
	}
	if _, err := s.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if !s.Empty() {
		t.Fatalf("count after reset = %d", s.Count())
	}
	if _, err := s.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("quantile on reset sketch: %v, want ErrEmpty", err)
	}
	s.Update(42)
	if q, err := s.Quantile(0.5); err != nil || q != 42 {
		t.Fatalf("post-reset quantile = %v, %v", q, err)
	}
}

func TestShardedUint64(t *testing.T) {
	s, err := NewShardedUint64(WithEpsilon(0.05), WithSeed(3), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 5000; i++ {
				s.Update(base*5000 + i)
			}
		}(uint64(w))
	}
	wg.Wait()
	if s.Count() != 20000 {
		t.Fatalf("count = %d", s.Count())
	}
	other, err := NewUint64(WithEpsilon(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(20000); i < 25000; i++ {
		other.Update(i)
	}
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 25000 {
		t.Fatalf("merged count = %d", s.Count())
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeUint64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Count() != 25000 {
		t.Fatalf("decoded count = %d", dec.Count())
	}
}

func TestShardedGenericType(t *testing.T) {
	type span struct {
		millis float64
		id     int
	}
	s, err := NewSharded(func(a, b span) bool { return a.millis < b.millis },
		WithEpsilon(0.05), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Update(span{millis: float64(i), id: i})
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med.millis-500) > 0.05*1000 {
		t.Fatalf("median span = %+v", med)
	}
	cdf, err := s.CDF([]span{{millis: 250}, {millis: 750}})
	if err != nil || len(cdf) != 3 {
		t.Fatalf("CDF = %v, %v", cdf, err)
	}
}

// TestShardedSnapshotCacheReuse checks the epoch logic: with no writes in
// between, repeated queries reuse one published snapshot; a write
// invalidates it.
func TestShardedSnapshotCacheReuse(t *testing.T) {
	s, err := NewShardedFloat64(WithEpsilon(0.05), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	_, _ = s.Quantile(0.5)
	first := s.snap.Load()
	if first == nil {
		t.Fatal("no snapshot published after query")
	}
	_, _ = s.Quantile(0.9)
	_ = s.Rank(10)
	if s.snap.Load() != first {
		t.Fatal("snapshot rebuilt although no write intervened")
	}
	s.Update(-1)
	_, _ = s.Quantile(0.5)
	if s.snap.Load() == first {
		t.Fatal("stale snapshot served after a write")
	}
}
