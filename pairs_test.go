package req

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Equivalence suite for the batched keyed ingest path: UpdatePairs must
// leave every per-key sketch bit-identical to the per-op Update loop over
// the same pairs. Two instances of a registry hash keys to different
// shards (maphash seeds are random), which changes allocation sequence
// numbers and with them the per-key sketch seeds — so every differential
// pair below aligns hash seeds through the tenant determinism hook before
// ingesting, and pins the stream-length bound with WithKnownN so no growth
// boundary lands mid-batch (the one documented divergence of any batched
// ingest, see Sketch.UpdateBatch).

// pairOpts is the shared config of the differential registries: multiple
// shards so grouping is exercised, pinned bound, fixed sketch seed.
func pairOpts(extra ...Option) []Option {
	return append([]Option{
		WithK(8), WithSeed(11), WithShards(4), WithKnownN(1 << 20),
	}, extra...)
}

// alignedRegistries returns two empty float64 registries that shard
// identically, so identical ingest must produce identical MarshalBinary
// blobs.
func alignedRegistries(t *testing.T, opts ...Option) (*RegistryFloat64, *RegistryFloat64) {
	t.Helper()
	a, err := NewRegistryFloat64(opts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRegistryFloat64(opts...)
	if err != nil {
		t.Fatal(err)
	}
	b.m.CopyHashSeed(a.m)
	return a, b
}

// sameBlob fails the test unless both registries export byte-identical
// state (per-key coresets in arena order — creation order, counts, items
// and weights all included).
func sameBlob(t *testing.T, what string, a, b *RegistryFloat64) {
	t.Helper()
	ba, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatalf("%s: batched registry state diverged from per-op state (%d vs %d bytes)",
			what, len(bb), len(ba))
	}
}

// pairBatch builds a batch with heavy key repetition: contiguous runs,
// scattered repeats, and singletons all occur.
func pairBatch(r *rand.Rand, n, distinct int) ([]string, []float64) {
	keys := make([]string, n)
	vals := make([]float64, n)
	for i := range keys {
		k := r.Intn(distinct)
		keys[i] = fmt.Sprintf("tenant-%03d", k)
		vals[i] = math.Round(r.NormFloat64()*1000) / 8
		if r.Intn(4) == 0 && i+1 < n { // force a contiguous same-key run
			keys[i] = fmt.Sprintf("tenant-%03d", r.Intn(distinct))
		}
	}
	return keys, vals
}

func TestUpdatePairsMatchesPerOpLoop(t *testing.T) {
	perOp, batched := alignedRegistries(t, pairOpts()...)
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 40; round++ {
		n := r.Intn(600) // includes tiny and empty batches
		if round == 3 {
			n = 0
		}
		keys, vals := pairBatch(r, n, 1+round*2)
		for i := range keys {
			perOp.Update(keys[i], vals[i])
		}
		batched.UpdatePairs(keys, vals)
	}
	sameBlob(t, "mixed batches", perOp, batched)
	if perOp.Len() != batched.Len() {
		t.Fatalf("Len diverged: %d vs %d", perOp.Len(), batched.Len())
	}
}

func TestUpdatePairsSingleKeyAndSingletons(t *testing.T) {
	perOp, batched := alignedRegistries(t, pairOpts()...)
	// One batch, one key: must behave exactly like UpdateBatch on that key.
	keys := make([]string, 300)
	vals := make([]float64, 300)
	for i := range keys {
		keys[i] = "only"
		vals[i] = float64(i % 37)
	}
	for i := range keys {
		perOp.Update(keys[i], vals[i])
	}
	batched.UpdatePairs(keys, vals)
	// A batch of all-distinct singletons: every run has length one.
	for i := range keys {
		keys[i] = fmt.Sprintf("s-%d", i)
	}
	for i := range keys {
		perOp.Update(keys[i], vals[i])
	}
	batched.UpdatePairs(keys, vals)
	sameBlob(t, "single-key + singletons", perOp, batched)
}

func TestUpdateKVsMatchesUpdatePairs(t *testing.T) {
	pairs, kvs := alignedRegistries(t, pairOpts()...)
	r := rand.New(rand.NewSource(5))
	for round := 0; round < 10; round++ {
		keys, vals := pairBatch(r, 200, 30)
		pairs.UpdatePairs(keys, vals)
		batch := make([]KV[string, float64], len(keys))
		for i := range keys {
			batch[i] = KV[string, float64]{Key: keys[i], Value: vals[i]}
		}
		kvs.UpdateKVs(batch)
	}
	sameBlob(t, "UpdateKVs", pairs, kvs)
}

func TestUpdatePairsNaNFiltering(t *testing.T) {
	perOp, batched := alignedRegistries(t, pairOpts()...)
	r := rand.New(rand.NewSource(6))
	nan := math.NaN()
	for round := 0; round < 10; round++ {
		keys, vals := pairBatch(r, 300, 40)
		for i := range vals {
			if r.Intn(5) == 0 {
				vals[i] = nan
			}
		}
		// The per-op front drops NaNs item by item; the batched front must
		// drop exactly the same pairs (keys in tandem).
		for i := range keys {
			perOp.Update(keys[i], vals[i])
		}
		batched.UpdatePairs(keys, vals)
	}
	sameBlob(t, "NaN batches", perOp, batched)

	// A key whose every value is NaN must never be created.
	batched.UpdatePairs([]string{"ghost", "ghost"}, []float64{nan, nan})
	if batched.Contains("ghost") {
		t.Fatal("all-NaN pairs materialized a key")
	}
}

func TestUpdatePairsLazyCreation(t *testing.T) {
	reg, err := NewRegistryFloat64(pairOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatal("fresh registry not empty")
	}
	reg.UpdatePairs([]string{"a", "b", "a"}, []float64{1, 2, 3})
	if reg.Len() != 2 || !reg.Contains("a") || !reg.Contains("b") {
		t.Fatalf("lazy creation: Len=%d", reg.Len())
	}
	if got := reg.Count("a"); got != 2 {
		t.Fatalf("key a count = %d, want 2", got)
	}
	// Existing keys are updated, not recreated.
	reg.UpdatePairs([]string{"b", "c"}, []float64{4, 5})
	if reg.Len() != 3 || reg.Count("b") != 2 {
		t.Fatalf("after second batch: Len=%d Count(b)=%d", reg.Len(), reg.Count("b"))
	}
}

func TestUpdatePairsEvictionMidBatch(t *testing.T) {
	// Capacity pressure inside one batch: more distinct keys than the cap,
	// so the clock hand must evict while the batch is being applied. With
	// one occurrence per key the ref-bit timeline matches the per-op loop
	// exactly, so the surviving population must be bit-identical.
	clk := &fakeClock{}
	opts := pairOpts(WithMaxEntries(32), WithTTL(time.Minute), clk.opt())
	perOp, batched := alignedRegistries(t, opts...)
	r := rand.New(rand.NewSource(8))
	for round := 0; round < 12; round++ {
		clk.advance(time.Second)
		n := 64 + r.Intn(64)
		keys := make([]string, n)
		vals := make([]float64, n)
		seen := map[string]bool{}
		for i := range keys {
			for {
				k := fmt.Sprintf("churn-%03d", r.Intn(200))
				if !seen[k] {
					seen[k] = true
					keys[i] = k
					break
				}
			}
			vals[i] = float64(i)
		}
		for i := range keys {
			perOp.Update(keys[i], vals[i])
		}
		batched.UpdatePairs(keys, vals)
		if pe, be := perOp.Evictions(), batched.Evictions(); pe != be {
			t.Fatalf("round %d: eviction counts diverged: per-op %d, batched %d", round, pe, be)
		}
	}
	sameBlob(t, "eviction churn", perOp, batched)
}

func TestUpdatePairsTTLExpiryAcrossBatches(t *testing.T) {
	clk := &fakeClock{}
	opts := pairOpts(WithTTL(10*time.Second), clk.opt())
	perOp, batched := alignedRegistries(t, opts...)
	feed := func(keys []string, vals []float64) {
		for i := range keys {
			perOp.Update(keys[i], vals[i])
		}
		batched.UpdatePairs(keys, vals)
	}
	feed([]string{"a", "b"}, []float64{1, 2})
	clk.advance(11 * time.Second) // both keys expire
	feed([]string{"a", "c"}, []float64{3, 4})
	if perOp.Contains("b") || batched.Contains("b") {
		t.Fatal("expired key still visible")
	}
	sameBlob(t, "TTL restart", perOp, batched)
}

// windowedStates dumps every key's ring state (epochs + per-slot debug
// dumps) in arena order — the windowed analogue of MarshalBinary for
// differential comparison.
func windowedStates(w *WindowedRegistryFloat64) string {
	var out string
	w.m.Visit(w.now(), func(key string, e *winEntry[float64]) bool {
		out += fmt.Sprintf("key=%s epochs=%v\n", key, e.epochs)
		for i := range e.ring {
			out += e.ring[i].DebugString() + "\n"
		}
		return true
	})
	return out
}

func TestWindowedUpdatePairsMatchesPerOpLoop(t *testing.T) {
	clk := &fakeClock{}
	opts := pairOpts(WithWindow(4, time.Second), clk.opt())
	mk := func() *WindowedRegistryFloat64 {
		w, err := NewWindowedRegistryFloat64(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	perOp, batched := mk(), mk()
	batched.m.CopyHashSeed(perOp.m)
	r := rand.New(rand.NewSource(13))
	for round := 0; round < 30; round++ {
		// Epoch advance between batches, including multi-epoch jumps that
		// leave stale slots for lazy rotation, and sub-epoch advances that
		// land several batches in one slot.
		clk.advance(time.Duration(r.Intn(2500)) * time.Millisecond)
		keys, vals := pairBatch(r, r.Intn(300), 25)
		for i := range keys {
			perOp.Update(keys[i], vals[i])
		}
		batched.UpdatePairs(keys, vals)
	}
	if a, b := windowedStates(perOp), windowedStates(batched); a != b {
		t.Fatalf("windowed batched state diverged from per-op state:\nper-op:\n%s\nbatched:\n%s", a, b)
	}
	// Windowed answers agree too (same merged view).
	for _, k := range []string{"tenant-000", "tenant-007", "tenant-012"} {
		qa, ea := perOp.Quantile(k, 0.9)
		qb, eb := batched.Quantile(k, 0.9)
		if qa != qb || (ea == nil) != (eb == nil) {
			t.Fatalf("key %s: windowed quantile diverged: %v/%v vs %v/%v", k, qa, ea, qb, eb)
		}
	}
}

func TestWindowedUpdatePairsRotationBoundary(t *testing.T) {
	clk := &fakeClock{}
	w, err := NewWindowedRegistryFloat64(pairOpts(WithWindow(3, time.Second), clk.opt())...)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"x", "x", "y"}
	// Fill epoch 0, then land a batch exactly on the epoch 1 boundary: the
	// whole batch must go to slot 1 (single clock reading), with slot 0
	// preserved until it ages out of the window.
	w.UpdatePairs(keys, []float64{1, 2, 3})
	clk.now = int64(time.Second) // exact boundary
	w.UpdatePairs(keys, []float64{4, 5, 6})
	if got := w.Count("x"); got != 4 {
		t.Fatalf("x window count = %d, want 4 (both epochs live)", got)
	}
	// Jump past the whole window: old slots age out, the next batch rotates
	// its slot lazily and answers alone.
	clk.advance(10 * time.Second)
	w.UpdatePairs(keys, []float64{7, 8, 9})
	if got := w.Count("x"); got != 2 {
		t.Fatalf("x count after window jump = %d, want 2", got)
	}
	q, err := w.Quantile("y", 0.5)
	if err != nil || q != 9 {
		t.Fatalf("y median after jump = %v, %v; want 9", q, err)
	}
}

func TestUpdatePairsConcurrent(t *testing.T) {
	// Race coverage: concurrent batched writers over overlapping key sets,
	// interleaved with queries and per-op writers. Correctness here is
	// "race detector silent + total counts add up".
	reg, err := NewRegistryFloat64(WithK(8), WithSeed(3), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		rounds  = 50
		batch   = 128
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			keys := make([]string, batch)
			vals := make([]float64, batch)
			for round := 0; round < rounds; round++ {
				for i := range keys {
					keys[i] = fmt.Sprintf("k-%02d", r.Intn(32))
					vals[i] = float64(i)
				}
				if g == 0 {
					for i := range keys { // one per-op writer in the mix
						reg.Update(keys[i], vals[i])
					}
				} else {
					reg.UpdatePairs(keys, vals)
				}
				if round%8 == 0 {
					_, _ = reg.Quantile(keys[0], 0.5)
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	reg.Visit(func(_ string, s *Sketch[float64]) bool {
		total += s.Count()
		return true
	})
	if want := uint64(writers * rounds * batch); total != want {
		t.Fatalf("total ingested weight = %d, want %d", total, want)
	}
}
