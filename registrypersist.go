package req

import (
	"fmt"

	"req/internal/core"
	"req/internal/snapstore"
)

// Registry persistence: a whole registry saved as one snapstore
// generation, restored as a RegistrySnapshot.
//
// The slab format's five sections are shaped for a single frozen coreset,
// not a keyed sequence, so a registry file packs its blob differently:
// the 16-byte registry header (see registryserde.go) rides as the
// application header, the keyed records stream across the five sections
// in file order (each filled to the exact length the format demands for
// the chosen packing count, zero-padded at the tail), and the header's
// IdxTotal field records the true record-stream length. Everything else —
// generation rotation, write-temp → fsync → rename crash safety, CRC32C
// per section, torn-write detection, OpenLatest recovery — is inherited
// from snapstore unchanged. A registry file and a single-snapshot file
// are mutually rejecting: each decoder validates its own application-
// header magic ("RREG" vs "REQ1") before touching a section byte.
//
// Restoring decodes every per-key record into heap-backed snapshots (a
// keyed sequence of varint-weighted records cannot alias the mapping the
// way a single coreset's parallel arrays can), so OpenRegistry* is O(total
// retained items) — the zero-copy property belongs to the single-snapshot
// path. Every record is structurally validated during decode regardless
// of VerifyMode; the mode only tunes snapstore's section checksumming.

// packBytesPerCount is how many payload bytes one unit of packing count
// buys: sections 0–1 carry 8 bytes each, sections 2–4 carry 8(C+1).
const packBytesPerCount = 40

// registryPayload packs a registry blob (header + records) into a slab
// payload: the packing count is the smallest C whose section capacity
// 40C+24 holds the record stream.
func registryPayload(blob []byte) *snapstore.Payload {
	app := blob[:registryHeaderSize]
	records := blob[registryHeaderSize:]
	l := uint64(len(records))
	p := &snapstore.Payload{App: app, IdxTotal: l}
	if l == 0 {
		return p
	}
	c := (l + packBytesPerCount - 1) / packBytesPerCount
	p.Count = c
	lens := [snapstore.NumSections]uint64{8 * c, 8 * c, 8 * (c + 1), 8 * (c + 1), 8 * (c + 1)}
	off := uint64(0)
	for i, n := range lens {
		sec := make([]byte, n)
		if off < l {
			copy(sec, records[off:])
		}
		off += n
		p.Sections[i] = sec
	}
	return p
}

// registryRecords reassembles the record stream from an opened registry
// file's sections, rejecting a length field that exceeds the sections'
// actual capacity.
func registryRecords(file *snapstore.File) ([]byte, error) {
	l := file.Header.IdxTotal
	var total uint64
	for i := 0; i < snapstore.NumSections; i++ {
		total += uint64(len(file.Section(i)))
	}
	if l > total {
		return nil, fmt.Errorf("%w: %w: record stream length %d exceeds %d section bytes",
			ErrCorrupt, snapstore.ErrCorrupt, l, total)
	}
	records := make([]byte, 0, l)
	for i := 0; i < snapstore.NumSections && uint64(len(records)) < l; i++ {
		records = append(records, file.Section(i)...)
	}
	return records[:l], nil
}

// saveRegistryBlob packs and durably writes a registry blob as the next
// generation in dir.
func saveRegistryBlob(blob []byte, dir string) (uint64, error) {
	return snapstore.NewStore(snapstore.OS, dir).Save(registryPayload(blob))
}

// openRegistryFile bridges an opened slab file to a decoded registry
// snapshot collection. The file is fully consumed and closed before
// returning.
func openRegistryFile[K comparable, T any](
	file *snapstore.File,
	less func(a, b T) bool,
	kc keyCodec[K], ic itemCodec[T],
) (*RegistrySnapshot[K, T], error) {
	defer file.Close()
	hdr := reader{buf: file.Header.App}
	keyCount, err := decodeRegistryHeader(&hdr, kc.tag, ic.tag)
	if err != nil {
		return nil, fmt.Errorf("%w: application header: %w", snapstore.ErrCorrupt, err)
	}
	if hdr.remaining() != 0 {
		return nil, fmt.Errorf("%w: %w: %d trailing application header bytes",
			ErrCorrupt, snapstore.ErrCorrupt, hdr.remaining())
	}
	records, err := registryRecords(file)
	if err != nil {
		return nil, err
	}
	r := reader{buf: records}
	m, err := decodeRegistryRecords(&r, keyCount, less, kc, ic)
	if err != nil {
		return nil, err
	}
	return &RegistrySnapshot[K, T]{m: m, gen: file.Header.Gen}, nil
}

// SaveRegistry captures every resident key's coreset and durably writes
// the collection as the next generation in the snapshot directory dir
// (created if missing), returning the generation number. The write is
// atomic under crashes exactly like Snapshot.SaveSnapshot: a reader sees
// either the previous generations or the new one, never a torn file. The
// capture is shard-by-shard consistent (each shard's keys freeze under
// that shard's lock); pause writers for a globally atomic cut.
func (r *RegistryFloat64) SaveRegistry(dir string) (uint64, error) {
	blob, _ := r.MarshalBinary()
	return saveRegistryBlob(blob, dir)
}

// WriteRegistryFile durably writes the registry capture as a single
// standalone file at path, outside any generation rotation. Open it with
// OpenRegistryFileFloat64.
func (r *RegistryFloat64) WriteRegistryFile(path string) error {
	blob, _ := r.MarshalBinary()
	return snapstore.WriteSnapshotFile(snapstore.OS, path, 1, registryPayload(blob))
}

// SaveRegistry durably writes the registry as the next generation in dir;
// see RegistryFloat64.SaveRegistry.
func (r *RegistryUint64) SaveRegistry(dir string) (uint64, error) {
	blob, _ := r.MarshalBinary()
	return saveRegistryBlob(blob, dir)
}

// WriteRegistryFile durably writes the registry capture as a single
// standalone file at path; see RegistryFloat64.WriteRegistryFile.
func (r *RegistryUint64) WriteRegistryFile(path string) error {
	blob, _ := r.MarshalBinary()
	return snapstore.WriteSnapshotFile(snapstore.OS, path, 1, registryPayload(blob))
}

// OpenRegistryFloat64 opens the newest valid generation in the registry
// snapshot directory dir as an immutable keyed snapshot collection,
// skipping torn or corrupt generations (crash recovery). It returns
// ErrNoSnapshot when the directory holds no generations, and an error
// wrapping ErrCorrupt when generations exist but none validates.
func OpenRegistryFloat64(dir string, opts ...OpenOption) (*RegistrySnapshotFloat64, error) {
	_, so := resolveOpen(opts)
	file, err := snapstore.NewStore(snapstore.OS, dir).OpenLatest(so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openRegistryFile(file, core.LessF64, stringKeyCodec, float64Codec)
}

// OpenRegistryUint64 is OpenRegistryFloat64 for uint64-keyed registries.
func OpenRegistryUint64(dir string, opts ...OpenOption) (*RegistrySnapshotUint64, error) {
	_, so := resolveOpen(opts)
	file, err := snapstore.NewStore(snapstore.OS, dir).OpenLatest(so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openRegistryFile(file, core.LessU64, uint64KeyCodec, uint64Codec)
}

// OpenRegistryFileFloat64 opens one registry file (a generation file or a
// WriteRegistryFile product) as an immutable keyed snapshot collection.
// Torn or corrupt files are rejected with ErrTornWrite / ErrCorrupt; the
// call never panics on hostile input.
func OpenRegistryFileFloat64(path string, opts ...OpenOption) (*RegistrySnapshotFloat64, error) {
	_, so := resolveOpen(opts)
	file, err := snapstore.OpenFile(snapstore.OS, path, so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openRegistryFile(file, core.LessF64, stringKeyCodec, float64Codec)
}

// OpenRegistryFileUint64 is OpenRegistryFileFloat64 for uint64-keyed
// registries.
func OpenRegistryFileUint64(path string, opts ...OpenOption) (*RegistrySnapshotUint64, error) {
	_, so := resolveOpen(opts)
	file, err := snapstore.OpenFile(snapstore.OS, path, so)
	if err != nil {
		return nil, wrapOpenErr(err)
	}
	return openRegistryFile(file, core.LessU64, uint64KeyCodec, uint64Codec)
}
