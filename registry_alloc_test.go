package req

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// Allocation pins for the keyed hot paths: once every resident sketch has
// grown past its high-water mark, keyed updates and keyed queries must not
// allocate — the tenant arena recycles cells, the sketch recycles its
// slab, and the query path repairs views into recycled storage.

// warmRegistry builds a string-keyed registry with nkeys resident keys,
// each warmed past its growth phase and through two freeze/repair cycles.
func warmRegistry(tb testing.TB, nkeys, perKey int) (*RegistryFloat64, []string) {
	tb.Helper()
	reg, err := NewRegistryFloat64(WithK(8), WithSeed(7), WithShards(4))
	if err != nil {
		tb.Fatal(err)
	}
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	for i, k := range keys {
		for j := 0; j < perKey; j++ {
			reg.Update(k, float64((j*7919+i)%perKey))
		}
		// Cycle the view cache so queries repair into recycled storage.
		if _, err := reg.Quantile(k, 0.5); err != nil {
			tb.Fatal(err)
		}
		reg.Update(k, 0.5)
		if _, err := reg.Quantile(k, 0.5); err != nil {
			tb.Fatal(err)
		}
	}
	return reg, keys
}

func TestAllocsRegistryUpdate(t *testing.T) {
	reg, keys := warmRegistry(t, 64, 1<<12)
	i := 0
	if avg := testing.AllocsPerRun(5000, func() {
		reg.Update(keys[i&63], float64(i&1023))
		i++
	}); avg != 0 {
		t.Fatalf("steady-state keyed Update allocates %v allocs/op", avg)
	}
}

func TestAllocsRegistryQuantile(t *testing.T) {
	reg, keys := warmRegistry(t, 16, 1<<12)
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		k := keys[i&15]
		reg.Update(k, float64(i&1023))
		if _, err := reg.Quantile(k, 0.99); err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Fatalf("keyed Quantile with interleaved updates allocates %v allocs/op", avg)
	}
}

func TestAllocsRegistryQuantilesInto(t *testing.T) {
	reg, keys := warmRegistry(t, 8, 1<<12)
	phis := []float64{0.5, 0.9, 0.99}
	dst := make([]float64, 0, len(phis))
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		k := keys[i&7]
		reg.Update(k, float64(i&1023))
		var err error
		dst, err = reg.QuantilesInto(k, dst[:0], phis)
		if err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Fatalf("keyed QuantilesInto allocates %v allocs/op", avg)
	}
}

// TestAllocsRegistryChurn pins the eviction-recycle loop: with the
// registry at capacity, creating fresh keys forever must reuse freelist
// cells and reset slabs, not allocate. Key strings are preallocated (the
// caller owns key construction; the registry must add nothing).
func TestAllocsRegistryChurn(t *testing.T) {
	reg, err := NewRegistryFloat64(WithK(4), WithSeed(3), WithShards(2), WithMaxEntries(64))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-%05d", i)
	}
	// Fill to capacity and run a full churn cycle so every shard has
	// evicted and recycled at least once at the final slab sizes.
	for _, k := range keys {
		for j := 0; j < 64; j++ {
			reg.Update(k, float64(j))
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(5000, func() {
		reg.Update(keys[i&4095], float64(i&63))
		i++
	}); avg != 0 {
		t.Fatalf("steady-state key churn allocates %v allocs/op", avg)
	}
}

func TestAllocsWindowedUpdateAndQuery(t *testing.T) {
	clk := &fakeClock{}
	w, err := NewWindowedRegistryFloat64(
		WithK(8), WithSeed(5), WithShards(2), WithWindow(4, time.Second), clk.opt())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("ep-%02d", i)
	}
	// Warm: fill every slot of every key across several full rotations,
	// querying as we go so the per-shard merge stages reach their
	// high-water marks.
	phis := []float64{0.5, 0.99}
	dst := make([]float64, 0, len(phis))
	for ep := 0; ep < 12; ep++ {
		clk.set(time.Duration(ep) * time.Second)
		for i, k := range keys {
			for j := 0; j < 1<<10; j++ {
				w.Update(k, float64((j*31+i)&1023))
			}
			var err error
			dst, err = w.QuantilesInto(k, dst[:0], phis)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		k := keys[i&15]
		w.Update(k, float64(i&1023))
		var err error
		dst, err = w.QuantilesInto(k, dst[:0], phis)
		if err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Fatalf("windowed Update+QuantilesInto allocates %v allocs/op", avg)
	}
	// Rotation itself must also be allocation-free once warm: advance the
	// epoch every iteration.
	ep := int64(12)
	if avg := testing.AllocsPerRun(200, func() {
		clk.set(time.Duration(ep) * time.Second)
		ep++
		for j := 0; j < 64; j++ {
			w.Update(keys[0], float64(j))
		}
	}); avg != 0 {
		t.Fatalf("windowed rotation allocates %v allocs/op", avg)
	}
}

// TestAllocsRegistryUpdatePairs pins the batched ingest path: once the
// pooled pair scratch (hash/run/table arrays) has grown to the batch's
// high-water mark, steady-state UpdatePairs over resident keys must not
// allocate. The caller owns the key and value slices; the registry adds
// nothing per batch.
func TestAllocsRegistryUpdatePairs(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled scratch: sync.Pool randomizes itself under the race detector")
	}
	reg, keys := warmRegistry(t, 64, 1<<10)
	const batch = 256
	bk := make([]string, batch)
	bv := make([]float64, batch)
	for i := range bk {
		bk[i] = keys[(i*7)&63]
		bv[i] = float64(i & 1023)
	}
	// Warm the pooled scratch to this batch size.
	reg.UpdatePairs(bk, bv)
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		for j := range bv {
			bv[j] = float64((i + j) & 1023)
		}
		reg.UpdatePairs(bk, bv)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state UpdatePairs allocates %v allocs/op", avg)
	}
}

// TestAllocsRegistryUpdateKVs pins the []KV front: splitting kvs into the
// pooled key/value staging arrays must reuse them run to run.
func TestAllocsRegistryUpdateKVs(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled scratch: sync.Pool randomizes itself under the race detector")
	}
	reg, keys := warmRegistry(t, 64, 1<<10)
	const batch = 256
	kvs := make([]KV[string, float64], batch)
	for i := range kvs {
		kvs[i] = KV[string, float64]{Key: keys[(i*5)&63], Value: float64(i)}
	}
	reg.UpdateKVs(kvs)
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		for j := range kvs {
			kvs[j].Value = float64((i + j) & 1023)
		}
		reg.UpdateKVs(kvs)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state UpdateKVs allocates %v allocs/op", avg)
	}
}

// TestAllocsRegistryUpdatePairsNaN pins the NaN-compaction path: batches
// containing NaNs are filtered into pooled staging arrays, not fresh ones.
func TestAllocsRegistryUpdatePairsNaN(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled scratch: sync.Pool randomizes itself under the race detector")
	}
	reg, keys := warmRegistry(t, 64, 1<<10)
	const batch = 256
	bk := make([]string, batch)
	bv := make([]float64, batch)
	nan := math.NaN()
	for i := range bk {
		bk[i] = keys[(i*3)&63]
		if i&7 == 0 {
			bv[i] = nan
		} else {
			bv[i] = float64(i)
		}
	}
	reg.UpdatePairs(bk, bv)
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		for j := range bv {
			if j&7 != 0 {
				bv[j] = float64((i + j) & 1023)
			}
		}
		reg.UpdatePairs(bk, bv)
		i++
	}); avg != 0 {
		t.Fatalf("NaN-filtered UpdatePairs allocates %v allocs/op", avg)
	}
}

// TestAllocsWindowedUpdatePairs pins the windowed batched path, including
// in-batch slot resolution and steady rotation.
func TestAllocsWindowedUpdatePairs(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled scratch: sync.Pool randomizes itself under the race detector")
	}
	clk := &fakeClock{}
	w, err := NewWindowedRegistryFloat64(
		WithK(8), WithSeed(5), WithShards(2), WithWindow(4, time.Second), clk.opt())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("ep-%02d", i)
	}
	const batch = 256
	bk := make([]string, batch)
	bv := make([]float64, batch)
	for i := range bk {
		bk[i] = keys[(i*3)&15]
		bv[i] = float64(i)
	}
	// Warm every ring slot across several rotations at this batch size.
	for ep := 0; ep < 12; ep++ {
		clk.set(time.Duration(ep) * time.Second)
		for r := 0; r < 8; r++ {
			w.UpdatePairs(bk, bv)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		for j := range bv {
			bv[j] = float64((i + j) & 1023)
		}
		w.UpdatePairs(bk, bv)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state windowed UpdatePairs allocates %v allocs/op", avg)
	}
	// Rotating every batch must stay allocation-free too.
	ep := int64(12)
	if avg := testing.AllocsPerRun(200, func() {
		clk.set(time.Duration(ep) * time.Second)
		ep++
		w.UpdatePairs(bk, bv)
	}); avg != 0 {
		t.Fatalf("windowed UpdatePairs across rotations allocates %v allocs/op", avg)
	}
}
