package req

import "req/internal/core"

// Uint64 is a sketch specialised to uint64 values — timestamps, byte
// counts, identifiers with a meaningful order. Like Float64 it supports
// binary serialization, and inherits the batch ingest path (UpdateBatch /
// UpdateAll) and the full Reader query surface — batch APIs (RankBatch,
// NormalizedRankBatch, QuantilesInto, CDFInto, PMFInto), the All coreset
// iterator, and Snapshot (returning *SnapshotUint64) — from the embedded
// Sketch unchanged: uint64 has no NaN to filter on either side. Not safe
// for concurrent use.
type Uint64 struct {
	Sketch[uint64]
}

// NewUint64 returns an empty uint64 sketch configured by opts. Values
// compare by the usual < order (the canonical core.LessU64, which activates
// the monomorphic kernel layer — see "Hardware kernels" in doc.go).
func NewUint64(opts ...Option) (*Uint64, error) {
	s, err := New(core.LessU64, opts...)
	if err != nil {
		return nil, err
	}
	return &Uint64{Sketch: *s}, nil
}

// Clone returns a deep copy of the sketch; see Sketch.Clone.
func (s *Uint64) Clone() *Uint64 {
	return &Uint64{Sketch: *s.Sketch.Clone()}
}

// Merge absorbs other into s; see Sketch.Merge.
func (s *Uint64) Merge(other *Uint64) error {
	if other == nil {
		return nil
	}
	return s.Sketch.Merge(&other.Sketch)
}
