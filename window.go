package req

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"req/internal/core"
	"req/internal/tenant"
)

// WindowedRegistry is a Registry whose per-key answers cover only a
// trailing time window: each key owns a ring of WithWindow-configured
// sketch slots, updates land in the slot owning the current epoch, and
// queries merge the live slots — the current partial slot plus the sealed
// ones still inside the window — through the sketch's mergeability
// guarantee (Theorem 3), so a windowed answer carries the same relative-
// error budget as a single sketch over the same items. This is the
// monitoring shape: per-endpoint p99 over the last N minutes, keys
// appearing and expiring as traffic shifts.
//
// # Rotation
//
// Time divides into fixed epochs of WithWindow's slot duration; slot
// i = epoch mod slots owns epoch's items. Rotation is lazy — the first
// update of a new epoch resets the ring slot it lands in (recycling the
// slot's storage) — so idle keys cost nothing to rotate and a clock that
// jumps several epochs simply leaves stale slots behind, which queries
// exclude by epoch tag. A query sees between (slots−1)·slot and
// slots·slot of trailing stream time depending on the phase of the
// current epoch.
//
// # Query path
//
// Queries copy the oldest live slot into a per-shard stage sketch
// (storage recycled across queries, per-shard so queries on different
// shards don't contend) and merge the remaining live slots in, then
// answer from the stage. Steady-state windowed queries therefore allocate
// nothing. The merged answer is only valid under the shard lock, so each
// query re-merges; batch the ranks you need into one QuantilesInto call
// rather than querying phi by phi.
//
// Eviction, sharding, clocking and concurrency are the Registry's; see
// WithTTL, WithMaxEntries, WithShards, WithClock.
type WindowedRegistry[K comparable, T any] struct {
	m    *tenant.Map[K, winEntry[T]]
	less func(a, b T) bool
	cfg  core.Config
	now  func() int64
	// pairs pools the batched-ingest scratch (*pairScratch[K, T]); a
	// pointer so the typed wrappers can embed WindowedRegistry by value.
	pairs *sync.Pool

	slots     int
	slotNanos int64
}

// winEntry is the arena payload of one windowed key: the slot ring and
// the epoch tag of each slot (−1 = never written).
type winEntry[T any] struct {
	ring   []core.Sketch[T]
	epochs []int64
}

// NewWindowedRegistry returns an empty windowed registry over the strict
// order less. WithWindow is required — it shapes the ring every key
// carries; the remaining options behave as in NewRegistry.
func NewWindowedRegistry[K comparable, T any](less func(a, b T) bool, opts ...Option) (*WindowedRegistry[K, T], error) {
	if less == nil {
		return nil, errors.New("req: nil less function")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.WindowSlots == 0 {
		return nil, errors.New("req: a WindowedRegistry requires WithWindow")
	}
	w := &WindowedRegistry[K, T]{
		less:      less,
		cfg:       cfg,
		now:       registryClock(cfg),
		pairs:     new(sync.Pool),
		slots:     cfg.WindowSlots,
		slotNanos: cfg.SlotNanos,
	}
	slots := w.slots
	w.m = tenant.NewMap[K, winEntry[T]](tenantConfig(cfg),
		func(e *winEntry[T], seq uint64) {
			e.ring = make([]core.Sketch[T], slots)
			e.epochs = make([]int64, slots)
			for i := range e.ring {
				// Init cannot fail: cfg was validated above, less is
				// non-nil. Each (key, slot) pair gets its own seed stream.
				_ = e.ring[i].Init(less, seedCfg(cfg, seq*uint64(slots)+uint64(i)))
				e.epochs[i] = -1
			}
		},
		func(e *winEntry[T]) {
			for i := range e.ring {
				e.ring[i].Reset()
				e.epochs[i] = -1
			}
		},
	)
	return w, nil
}

// epoch returns the epoch number owning caller-clock time now.
func (w *WindowedRegistry[K, T]) epoch(now int64) int64 { return now / w.slotNanos }

// Update inserts one item into key's current window slot, creating the
// key's ring on first update and rotating (resetting) the slot if it
// still holds an expired epoch.
func (w *WindowedRegistry[K, T]) Update(key K, item T) {
	now := w.now()
	ep := w.epoch(now)
	sh := w.m.Lock(key)
	e, _ := w.m.GetOrCreate(sh, key, now)
	sk := w.rotate(e, ep)
	sk.Update(item)
	sh.Unlock()
}

// UpdateBatch inserts every item of the slice into key's current window
// slot through the batch ingest path. The slice is only read.
func (w *WindowedRegistry[K, T]) UpdateBatch(key K, items []T) {
	if len(items) == 0 {
		return
	}
	now := w.now()
	ep := w.epoch(now)
	sh := w.m.Lock(key)
	e, _ := w.m.GetOrCreate(sh, key, now)
	sk := w.rotate(e, ep)
	sk.UpdateBatch(items)
	sh.Unlock()
}

// rotate returns the ring slot owning epoch ep, resetting it first if its
// tag is stale (lazy rotation).
func (w *WindowedRegistry[K, T]) rotate(e *winEntry[T], ep int64) *core.Sketch[T] {
	i := int(ep % int64(w.slots))
	if e.epochs[i] != ep {
		e.ring[i].Reset()
		e.epochs[i] = ep
	}
	return &e.ring[i]
}

// live reports whether slot i's epoch tag falls inside the window ending
// at epoch ep.
func (w *WindowedRegistry[K, T]) live(e *winEntry[T], i int, ep int64) bool {
	return e.epochs[i] >= 0 && ep-e.epochs[i] < int64(w.slots)
}

// stage returns the shard's reusable merge stage, creating it on the
// shard's first windowed query.
//
// +req:locksRequired(sh.mu)
func (w *WindowedRegistry[K, T]) stage(sh *tenant.Shard[K, winEntry[T]]) *core.Sketch[T] {
	if sh.Aux == nil {
		st := new(core.Sketch[T])
		_ = st.Init(w.less, w.cfg)
		sh.Aux = st
	}
	return sh.Aux.(*core.Sketch[T])
}

// merged locks key's shard and merges its live slots into the shard
// stage, returning the stage. ok is false when the key is absent (the
// shard is still locked). An empty window returns an empty stage.
//
// +req:locksAcquired(return1.mu)
func (w *WindowedRegistry[K, T]) merged(key K) (*tenant.Shard[K, winEntry[T]], *core.Sketch[T], bool) {
	now := w.now()
	ep := w.epoch(now)
	sh := w.m.Lock(key)
	e := w.m.Get(sh, key, now)
	if e == nil {
		return sh, nil, false
	}
	st := w.stage(sh)
	// Seed the stage by deep-copying the tallest live slot into its
	// recycled storage, then merge the remaining live slots in. Copying
	// the tallest first keeps every Merge on its in-place path: merging a
	// taller source into a shorter target deep-copies the source, and an
	// empty target adopts a clone — both would allocate on every query.
	tallest := -1
	for i := range e.ring {
		if w.live(e, i, ep) && (tallest < 0 || e.ring[i].NumLevels() > e.ring[tallest].NumLevels()) {
			tallest = i
		}
	}
	if tallest < 0 {
		st.Reset()
		return sh, st, true
	}
	st.CopyFrom(&e.ring[tallest])
	for i := range e.ring {
		if i != tallest && w.live(e, i, ep) {
			// Same-config merge into a distinct sketch cannot fail.
			_ = st.Merge(&e.ring[i])
		}
	}
	return sh, st, true
}

// Quantile returns the item at normalized rank phi over key's trailing
// window; see Sketch.Quantile. It returns ErrNoKey when the key is absent
// and ErrEmpty when the key's window holds no items.
func (w *WindowedRegistry[K, T]) Quantile(key K, phi float64) (T, error) {
	sh, st, ok := w.merged(key)
	defer sh.Unlock()
	if !ok {
		var zero T
		return zero, ErrNoKey
	}
	return st.Quantile(phi)
}

// QuantilesInto answers every normalized rank in phis over key's trailing
// window with a single merge, writing into dst (grown as needed); see
// Sketch.QuantilesInto. It returns ErrNoKey when the key is absent. This
// is the preferred shape for multi-quantile dashboards: one merge, one
// sorted pass, all ranks.
func (w *WindowedRegistry[K, T]) QuantilesInto(key K, dst []T, phis []float64) ([]T, error) {
	sh, st, ok := w.merged(key)
	defer sh.Unlock()
	if !ok {
		return dst, ErrNoKey
	}
	return st.QuantilesInto(dst, phis)
}

// Rank returns the estimated inclusive rank of y over key's trailing
// window; see Sketch.Rank. It returns ErrNoKey when the key is absent.
func (w *WindowedRegistry[K, T]) Rank(key K, y T) (uint64, error) {
	sh, st, ok := w.merged(key)
	defer sh.Unlock()
	if !ok {
		return 0, ErrNoKey
	}
	return st.Rank(y), nil
}

// Count returns the number of items inside key's trailing window, 0 when
// the key is absent. Unlike a full merge it only sums slot counts.
func (w *WindowedRegistry[K, T]) Count(key K) uint64 {
	now := w.now()
	ep := w.epoch(now)
	sh := w.m.Lock(key)
	defer sh.Unlock()
	e := w.m.Get(sh, key, now)
	if e == nil {
		return 0
	}
	var n uint64
	for i := range e.ring {
		if w.live(e, i, ep) {
			n += e.ring[i].Count()
		}
	}
	return n
}

// Contains reports whether key has a resident, non-expired ring, without
// refreshing its TTL.
func (w *WindowedRegistry[K, T]) Contains(key K) bool {
	now := w.now()
	sh := w.m.Lock(key)
	defer sh.Unlock()
	return w.m.Peek(sh, key, now) != nil
}

// Delete removes key's ring, recycling its storage. It reports whether
// the key was resident.
func (w *WindowedRegistry[K, T]) Delete(key K) bool {
	sh := w.m.Lock(key)
	defer sh.Unlock()
	return w.m.Delete(sh, key)
}

// Len returns the number of resident keys (see Registry.Len).
func (w *WindowedRegistry[K, T]) Len() int { return w.m.Len() }

// Evictions returns the total number of entries reclaimed so far.
func (w *WindowedRegistry[K, T]) Evictions() uint64 { return w.m.Evictions() }

// ExpireNow eagerly reclaims every TTL-expired key; see
// Registry.ExpireNow.
func (w *WindowedRegistry[K, T]) ExpireNow() int { return w.m.ExpireNow(w.now()) }

// Reset drops every key (a teardown, not an eviction). Shard merge stages
// are kept.
func (w *WindowedRegistry[K, T]) Reset() { w.m.Reset() }

// NumShards returns the registry's shard count.
func (w *WindowedRegistry[K, T]) NumShards() int { return w.m.NumShards() }

// Slots returns the ring length configured by WithWindow.
func (w *WindowedRegistry[K, T]) Slots() int { return w.slots }

// SlotDuration returns the epoch length configured by WithWindow.
func (w *WindowedRegistry[K, T]) SlotDuration() time.Duration {
	return time.Duration(w.slotNanos)
}

// WindowDuration returns the full window span: Slots() · SlotDuration().
// A query covers between WindowDuration()−SlotDuration() and
// WindowDuration() of trailing stream time depending on epoch phase.
func (w *WindowedRegistry[K, T]) WindowDuration() time.Duration {
	return time.Duration(int64(w.slots) * w.slotNanos)
}

// String returns a short human-readable summary.
func (w *WindowedRegistry[K, T]) String() string {
	return fmt.Sprintf("req.WindowedRegistry{keys=%d, shards=%d, window=%d×%s}",
		w.Len(), w.NumShards(), w.slots, w.SlotDuration())
}

// WindowedRegistryFloat64 is a windowed registry of float64 sketches
// keyed by string — per-endpoint latency over a trailing window. It adds
// NaN filtering on the ingest path.
type WindowedRegistryFloat64 struct {
	WindowedRegistry[string, float64]
}

// NewWindowedRegistryFloat64 returns an empty string-keyed windowed
// float64 registry configured by opts (WithWindow required). Values
// compare by the usual < order (the canonical core.LessF64).
func NewWindowedRegistryFloat64(opts ...Option) (*WindowedRegistryFloat64, error) {
	w, err := NewWindowedRegistry[string, float64](core.LessF64, opts...)
	if err != nil {
		return nil, err
	}
	return &WindowedRegistryFloat64{WindowedRegistry: *w}, nil
}

// Update inserts one value into key's current window slot. NaN values
// are ignored.
func (w *WindowedRegistryFloat64) Update(key string, v float64) {
	if v != v { // NaN
		return
	}
	w.WindowedRegistry.Update(key, v)
}

// UpdateBatch inserts every value of the slice into key's current window
// slot, skipping NaNs; the slice is copied only if it contains a NaN.
func (w *WindowedRegistryFloat64) UpdateBatch(key string, vs []float64) {
	w.WindowedRegistry.UpdateBatch(key, core.FilterNaN(vs))
}
