package req

import (
	"math"
	"sync"
	"testing"
)

func TestFloat64UpdateBatchFiltersNaN(t *testing.T) {
	s, err := NewFloat64(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch([]float64{1, math.NaN(), 2, math.NaN(), 3})
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3 (NaNs must be dropped)", s.Count())
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn != 1 || mx != 3 {
		t.Fatalf("min/max = %v/%v", mn, mx)
	}
	// All-NaN and empty batches are no-ops.
	s.UpdateBatch([]float64{math.NaN()})
	s.UpdateBatch(nil)
	if s.Count() != 3 {
		t.Fatalf("count = %d after no-op batches", s.Count())
	}
}

func TestUpdateBatchMatchesUpdateAll(t *testing.T) {
	a, err := NewFloat64(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFloat64(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	vals := permStream(50000, 77)
	a.UpdateAll(vals)
	b.UpdateBatch(vals)
	if a.Count() != b.Count() || a.ItemsRetained() != b.ItemsRetained() {
		t.Fatal("UpdateAll and UpdateBatch must be the same path")
	}
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		qa, _ := a.Quantile(phi)
		qb, _ := b.Quantile(phi)
		if qa != qb {
			t.Fatalf("Quantile(%v): %v vs %v", phi, qa, qb)
		}
	}
}

func TestUint64UpdateBatch(t *testing.T) {
	s, err := NewUint64(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 100000)
	for i := range vals {
		vals[i] = uint64(i)
	}
	s.UpdateBatch(vals)
	if s.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d", s.Count())
	}
	q, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 40000 || q > 60000 {
		t.Fatalf("median %d implausible", q)
	}
}

func TestShardedUpdateBatchConcurrent(t *testing.T) {
	s, err := NewShardedFloat64(WithSeed(5), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perBatch, batches = 8, 1000, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]float64, perBatch)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = float64(w*perBatch*batches + b*perBatch + i)
				}
				s.UpdateBatch(batch)
			}
		}(w)
	}
	wg.Wait()
	want := uint64(writers * perBatch * batches)
	if s.Count() != want {
		t.Fatalf("count = %d, want %d", s.Count(), want)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(want)
	if med < 0.3*n || med > 0.7*n {
		t.Fatalf("median %v implausible for 0..%v", med, n-1)
	}
}

func TestConcurrentFloat64UpdateBatch(t *testing.T) {
	c, err := NewConcurrentFloat64(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]float64, 500)
			for b := 0; b < 10; b++ {
				for i := range batch {
					batch[i] = float64(i)
				}
				c.UpdateBatch(batch)
				_, _ = c.Quantile(0.9) // interleave reads
			}
		}(w)
	}
	wg.Wait()
	if c.Count() != 4*10*500 {
		t.Fatalf("count = %d", c.Count())
	}
}
