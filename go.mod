module req

go 1.24
