module req

go 1.24

// Pinned so reqlint's analyzer behavior is reproducible: this is the exact
// x/tools revision vendored from the Go 1.24.0 toolchain's cmd/vendor tree
// (the copy `go vet` itself is built from), committed under vendor/ so the
// module builds fully offline.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
